// Persistent thread pool for seed sweeps.
//
// The previous sweep fanned each run out with std::async and then waited on
// the *oldest* future (head-of-line blocking): one slow seed stalled refills
// of every idle slot, and each run paid a thread spawn. This pool keeps its
// workers alive across sweeps and hands out work by an atomic index that
// idle threads steal from — no per-run thread creation, no blocking on a
// particular run, and the caller's thread drains work too instead of
// sleeping.
#pragma once

#include <functional>

namespace updp2p::sim {

class SweepPool {
 public:
  /// The process-wide pool (workers are started lazily on first use and
  /// joined at exit).
  static SweepPool& shared();

  /// Executes task(0), …, task(count-1), using the calling thread plus up
  /// to max_workers-1 pool workers (0 = one per hardware thread). Blocks
  /// until every index completed; rethrows the first task exception.
  /// Indices are claimed from an atomic counter, so assignment order is
  /// scheduling-dependent but every index runs exactly once. Nested calls
  /// from inside a task run inline and serially (no deadlock).
  void run(unsigned count, unsigned max_workers,
           const std::function<void(unsigned)>& task);

  SweepPool(const SweepPool&) = delete;
  SweepPool& operator=(const SweepPool&) = delete;

 private:
  SweepPool();
  ~SweepPool();

  struct Impl;
  Impl* impl_;
};

}  // namespace updp2p::sim
