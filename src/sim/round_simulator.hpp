// Round-synchronous simulator of the push phase (+ optional pull), the
// discrete-time model of paper §3/§4.1: messages sent in round t are
// processed in round t+1, online peers stay with probability σ per round,
// and the per-round metrics mirror the analysis' M(t) and F_aware(t).
//
// This simulator is an *independent* implementation of the protocol (it
// executes ReplicaNode state machines, not the recurrences), so agreement
// with analysis::evaluate_push is a genuine cross-validation.
//
// Intra-run parallelism: the population is cut into `shard_threads`
// contiguous shards. Each round, every shard task delivers the messages
// addressed to its own nodes (collected from the sharded bus in canonical
// (to, from, seq) order) and runs its nodes' timers; churn, hooks and
// metric merging stay sequential between rounds. Results are
// bit-identical at ANY shard/thread count: node RNGs are counter-based
// per-node streams, loss draws are keyed by (seed, recipient, round), the
// delivery order is canonical, and every merged counter is a sum. See
// DESIGN.md "Sharded round engine".
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "churn/churn_model.hpp"
#include "common/rng.hpp"
#include "common/types.hpp"
#include "gossip/arena.hpp"
#include "gossip/node.hpp"
#include "net/message_bus.hpp"
#include "sim/metrics.hpp"

namespace updp2p::sim {

struct RoundSimConfig {
  std::size_t population = 1'000;
  gossip::GossipConfig gossip;
  /// Peers each replica initially knows (0 = the full replica set, the
  /// paper's analysis assumption; small values exercise the name-dropper
  /// membership growth).
  std::size_t initial_view_size = 0;
  common::Round max_rounds = 200;
  /// Stop when no protocol message has been exchanged for this many rounds.
  common::Round quiescence_rounds = 3;
  /// Run the pull machinery for peers that come online mid-run.
  bool reconnect_pull = true;
  /// Run per-round timer processing (no-update-timeout pulls, ack expiry).
  bool round_timers = true;
  double message_loss = 0.0;
  /// Serialise every payload through the binary wire codec on send (one
  /// interned encode per fan-out, frame shared by reference) and deliver
  /// via ReplicaNode::handle_frame (probe + lazy decode) — integration-
  /// proves gossip/codec end to end. Byte counters charge exact encoded
  /// sizes in BOTH modes (OutboundMessage::size_bytes == encoded frame
  /// length), so metrics are bit-identical with this flag on or off.
  bool serialize_messages = false;
  std::uint64_t seed = 0x5eed;
  /// Shards (= maximum worker threads) one round is stepped across.
  /// 1 = sequential; 0 = one per hardware thread. Metrics and node state
  /// are bit-identical at every value.
  unsigned shard_threads = 1;
};

/// What travels on the simulator's bus. In-memory runs carry only the
/// payload; serialize_messages runs additionally carry the encoded frame,
/// interned once per fan-out (gossip::FrameCache) and shared by reference
/// across every recipient — delivery then goes through
/// ReplicaNode::handle_frame (probe + lazy decode) and never reads
/// `payload`, so the run exercises exactly what a deployment would receive.
struct SimPayload {
  gossip::GossipPayload payload;
  gossip::SharedFrame frame;  ///< engaged only when serialize_messages
};

class RoundSimulator {
 public:
  /// The churn model's population must match `config.population`.
  RoundSimulator(RoundSimConfig config,
                 std::unique_ptr<churn::ChurnModel> churn);

  /// Resets churn/network state and propagates one update published by
  /// `initiator` (or by a random online peer when nullopt). Returns the
  /// per-round metrics of this update's dissemination.
  RunMetrics propagate_update(
      std::optional<common::PeerId> initiator = std::nullopt,
      std::string key = "item", std::string payload = "v1");

  /// Runs `rounds` additional rounds of the current network (message
  /// delivery, churn, timers) without publishing; used to exercise the
  /// pull phase after a push completed.
  void run_rounds(common::Round rounds);

  [[nodiscard]] gossip::ReplicaNode& node(common::PeerId peer) {
    return nodes_.at(peer.value());
  }
  [[nodiscard]] const gossip::ReplicaNode& node(common::PeerId peer) const {
    return nodes_.at(peer.value());
  }
  [[nodiscard]] std::size_t population() const noexcept {
    return nodes_.size();
  }
  [[nodiscard]] const churn::ChurnModel& churn() const noexcept {
    return *churn_;
  }
  [[nodiscard]] const net::BusStats& bus_stats() const {
    merged_bus_stats_ = bus_.stats();
    return merged_bus_stats_;
  }
  /// Shards one round is stepped across (resolved from shard_threads).
  [[nodiscard]] unsigned shard_count() const noexcept { return shard_count_; }
  /// Installs a connectivity predicate (network partitions); nullptr heals.
  /// The predicate is invoked concurrently from shard tasks and must be
  /// safe to call from multiple threads (pure functions are).
  void set_link_filter(
      std::function<bool(common::PeerId, common::PeerId)> filter) {
    link_filter_ = std::move(filter);
  }
  [[nodiscard]] common::Round current_round() const noexcept { return round_; }

  /// Fraction of *online* peers that know `id` (the paper's F_aware).
  [[nodiscard]] double aware_fraction(const version::VersionId& id) const;
  /// Count of online peers knowing `id`.
  [[nodiscard]] std::size_t aware_online(const version::VersionId& id) const;

 private:
  /// Per-shard state: the scratch arena shared by the shard's nodes, the
  /// delivery batch, the reaction buffer, and this round's counters. The
  /// whole block is cache-line aligned so two shard tasks never
  /// false-share counter lines.
  struct alignas(64) Shard {
    gossip::WorkArena arena;
    std::vector<net::Envelope<SimPayload>> batch;
    std::vector<gossip::OutboundMessage> reactions;
    std::uint64_t push_messages = 0;
    std::uint64_t pull_messages = 0;
    std::uint64_t ack_messages = 0;
    std::uint64_t query_messages = 0;
    std::uint64_t bytes = 0;
    std::uint64_t duplicates = 0;
    std::uint64_t new_aware = 0;  ///< awareness gained this round (summed)

    void reset_counters() noexcept {
      push_messages = pull_messages = ack_messages = query_messages = 0;
      bytes = duplicates = new_aware = 0;
    }
  };

  /// Moves `out`'s messages onto the bus from the task owning `shard`
  /// (which must be the sender's shard), classifying them for the shard's
  /// counters. `out` is left cleared with capacity retained.
  void dispatch_from(std::size_t shard, common::PeerId from,
                     std::vector<gossip::OutboundMessage>& out);
  /// Sequential-context dispatch (publish, reconnect hooks).
  void dispatch(common::PeerId from, std::vector<gossip::OutboundMessage>& out);
  void step_round(RunMetrics* metrics);
  /// One shard's slice of a round: deliver this shard's batch, then run
  /// its nodes' timers. Runs concurrently with other shards.
  void step_shard(unsigned shard);
  /// Arms incremental awareness tracking for `id` (the update being
  /// propagated): O(population) once, then O(1) per awareness change.
  void start_tracking(const version::VersionId& id);
  /// Folds a just-handled delivery into the shard's awareness counter.
  void note_awareness(std::uint32_t node_index, Shard& shard);

  RoundSimConfig config_;
  std::unique_ptr<churn::ChurnModel> churn_;
  /// Sequential-phase draws only (churn advance, publisher pick,
  /// bootstrap); never touched by shard tasks.
  common::Rng rng_;
  std::vector<gossip::ReplicaNode> nodes_;
  net::ShardedMessageBus<SimPayload> bus_;
  std::function<bool(common::PeerId, common::PeerId)> link_filter_;
  unsigned shard_count_ = 1;
  std::vector<Shard> shards_;
  common::Round round_ = 0;

  // SoA hot-path node state, owned here so shard tasks touch flat arrays
  // instead of chasing per-node heap blocks. Element i is written only by
  // the shard that owns node i (or by the sequential phases), so plain
  // byte/word arrays are race-free.
  std::vector<std::uint8_t> online_;     ///< churn snapshot read by shards
  std::vector<std::uint8_t> aware_;      ///< i knows tracked_id_ — guarded-by(shard)
  std::vector<std::uint32_t> send_seq_;  ///< sender seq — guarded-by(shard)

  // Incremental metric state: awareness used to be an O(population) rescan
  // per round; shard tasks count newly-aware nodes and the merge step sums
  // them into aware_online_count_.
  bool tracking_ = false;
  version::VersionId tracked_id_{};
  std::size_t aware_online_count_ = 0;  ///< |{i : aware_[i] ∧ online(i)}|

  /// Reusable buffer for sequential-phase reactions (reconnect hooks).
  std::vector<gossip::OutboundMessage> reactions_scratch_;

  mutable net::BusStats merged_bus_stats_;
};

/// Convenience: builds the simulator matching the analysis-model population
/// (BernoulliChurn with initial fraction and σ, no rejoins).
[[nodiscard]] std::unique_ptr<RoundSimulator> make_push_phase_simulator(
    RoundSimConfig config, double initial_online_fraction, double sigma);

}  // namespace updp2p::sim
