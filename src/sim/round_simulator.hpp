// Round-synchronous simulator of the push phase (+ optional pull), the
// discrete-time model of paper §3/§4.1: messages sent in round t are
// processed in round t+1, online peers stay with probability σ per round,
// and the per-round metrics mirror the analysis' M(t) and F_aware(t).
//
// This simulator is an *independent* implementation of the protocol (it
// executes ReplicaNode state machines, not the recurrences), so agreement
// with analysis::evaluate_push is a genuine cross-validation.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "churn/churn_model.hpp"
#include "common/rng.hpp"
#include "common/types.hpp"
#include "gossip/node.hpp"
#include "net/message_bus.hpp"
#include "sim/metrics.hpp"

namespace updp2p::sim {

struct RoundSimConfig {
  std::size_t population = 1'000;
  gossip::GossipConfig gossip;
  /// Peers each replica initially knows (0 = the full replica set, the
  /// paper's analysis assumption; small values exercise the name-dropper
  /// membership growth).
  std::size_t initial_view_size = 0;
  common::Round max_rounds = 200;
  /// Stop when no protocol message has been exchanged for this many rounds.
  common::Round quiescence_rounds = 3;
  /// Run the pull machinery for peers that come online mid-run.
  bool reconnect_pull = true;
  /// Run per-round timer processing (no-update-timeout pulls, ack expiry).
  bool round_timers = true;
  double message_loss = 0.0;
  /// Serialise every payload through the binary wire codec on send and
  /// decode on delivery — integration-proves gossip/codec end to end and
  /// charges *actual* encoded sizes to the byte counters.
  bool serialize_messages = false;
  std::uint64_t seed = 0x5eed;
};

class RoundSimulator {
 public:
  /// The churn model's population must match `config.population`.
  RoundSimulator(RoundSimConfig config,
                 std::unique_ptr<churn::ChurnModel> churn);

  /// Resets churn/network state and propagates one update published by
  /// `initiator` (or by a random online peer when nullopt). Returns the
  /// per-round metrics of this update's dissemination.
  RunMetrics propagate_update(
      std::optional<common::PeerId> initiator = std::nullopt,
      std::string key = "item", std::string payload = "v1");

  /// Runs `rounds` additional rounds of the current network (message
  /// delivery, churn, timers) without publishing; used to exercise the
  /// pull phase after a push completed.
  void run_rounds(common::Round rounds);

  [[nodiscard]] gossip::ReplicaNode& node(common::PeerId peer) {
    return *nodes_.at(peer.value());
  }
  [[nodiscard]] const gossip::ReplicaNode& node(common::PeerId peer) const {
    return *nodes_.at(peer.value());
  }
  [[nodiscard]] std::size_t population() const noexcept {
    return nodes_.size();
  }
  [[nodiscard]] const churn::ChurnModel& churn() const noexcept {
    return *churn_;
  }
  [[nodiscard]] const net::BusStats& bus_stats() const noexcept {
    return bus_.stats();
  }
  /// Installs a connectivity predicate (network partitions); nullptr heals.
  void set_link_filter(
      std::function<bool(common::PeerId, common::PeerId)> filter) {
    bus_.set_link_filter(std::move(filter));
  }
  [[nodiscard]] common::Round current_round() const noexcept { return round_; }

  /// Fraction of *online* peers that know `id` (the paper's F_aware).
  [[nodiscard]] double aware_fraction(const version::VersionId& id) const;
  /// Count of online peers knowing `id`.
  [[nodiscard]] std::size_t aware_online(const version::VersionId& id) const;

 private:
  /// Moves `out`'s messages onto the bus, classifying them for the
  /// per-round counters. `out` is left cleared with capacity retained so
  /// callers can reuse it.
  void dispatch(common::PeerId from, std::vector<gossip::OutboundMessage>& out);
  void step_round(RunMetrics* metrics);
  /// Arms incremental awareness tracking for `id` (the update being
  /// propagated): O(population) once, then O(1) per awareness change.
  void start_tracking(const version::VersionId& id);
  /// Folds a just-handled delivery into the incremental awareness count.
  void note_awareness(std::uint32_t node_index);

  RoundSimConfig config_;
  std::unique_ptr<churn::ChurnModel> churn_;
  common::Rng rng_;
  std::vector<std::unique_ptr<gossip::ReplicaNode>> nodes_;
  net::MessageBus<gossip::GossipPayload> bus_;
  common::Round round_ = 0;
  std::vector<bool> was_online_;

  // Incremental metric state: duplicates and awareness used to be
  // O(population) rescans per round; they are now maintained as messages
  // are handled and churn transitions fire.
  bool tracking_ = false;
  version::VersionId tracked_id_{};
  std::vector<char> aware_;           ///< aware_[i]: node i knows tracked_id_
  std::size_t aware_online_count_ = 0;  ///< |{i : aware_[i] ∧ online(i)}|
  std::uint64_t round_duplicates_ = 0;

  /// Reusable per-delivery reaction buffer (capacity retained across the
  /// run; the hot path allocates nothing once warm).
  std::vector<gossip::OutboundMessage> reactions_scratch_;

  // Per-round message-kind counters (reset each round by step_round).
  std::uint64_t round_push_ = 0;
  std::uint64_t round_pull_ = 0;
  std::uint64_t round_ack_ = 0;
  std::uint64_t round_query_ = 0;
  std::uint64_t round_bytes_ = 0;
};

/// Convenience: builds the simulator matching the analysis-model population
/// (BernoulliChurn with initial fraction and σ, no rejoins).
[[nodiscard]] std::unique_ptr<RoundSimulator> make_push_phase_simulator(
    RoundSimConfig config, double initial_online_fraction, double sigma);

}  // namespace updp2p::sim
