#include "sim/event_simulator.hpp"

#include <algorithm>

#include "common/ensure.hpp"

namespace updp2p::sim {

EventSimulator::EventSimulator(EventSimConfig config)
    : config_(std::move(config)),
      rng_(config_.seed),
      sessions_(config_.mean_online_time, config_.mean_offline_time) {
  UPDP2P_ENSURE(config_.population > 0, "population must be positive");
  UPDP2P_ENSURE(config_.round_duration > 0.0, "round duration must be positive");
  if (!config_.latency) {
    config_.latency =
        std::make_shared<net::ConstantLatency>(config_.round_duration / 2.0);
  }

  nodes_.reserve(config_.population);
  online_.resize(config_.population);
  // Full-membership bootstrap set in compressed form: built once, absorbed
  // per node by word-parallel merge (see RoundSimulator's ctor).
  common::ChunkedPeerSet everyone;
  for (std::uint32_t i = 0; i < config_.population; ++i) {
    everyone.insert(common::PeerId(i));
  }

  for (std::uint32_t i = 0; i < config_.population; ++i) {
    const common::PeerId self(i);
    nodes_.push_back(std::make_unique<gossip::ReplicaNode>(
        self, config_.gossip, common::StreamRng(config_.seed, i)));
    // Single-threaded driver: one arena serves the whole population.
    nodes_.back()->use_arena(&arena_);
    if (config_.initial_view_size == 0 ||
        config_.initial_view_size >= config_.population) {
      nodes_.back()->bootstrap(everyone);
    } else {
      std::vector<common::PeerId> sample;
      for (const std::uint32_t idx : rng_.sample_without_replacement(
               static_cast<std::uint32_t>(config_.population),
               static_cast<std::uint32_t>(config_.initial_view_size))) {
        sample.emplace_back(idx);
      }
      nodes_.back()->bootstrap(sample);
    }

    // Stationary initial state + first session transition.
    const auto [starts_online, first_transition] = sessions_.start(rng_);
    online_[i] = starts_online;
    Event transition;
    transition.at = first_transition;
    transition.kind = EventKind::kTransition;
    transition.peer = self;
    push_event(std::move(transition));

    // Per-peer timer ticks, staggered to avoid a thundering herd.
    Event tick;
    tick.at = config_.round_duration * (1.0 + rng_.uniform01());
    tick.kind = EventKind::kTimerTick;
    tick.peer = self;
    push_event(std::move(tick));
  }
}

void EventSimulator::push_event(Event event) {
  event.seq = next_seq_++;
  queue_.push(std::move(event));
}

void EventSimulator::send_all(common::PeerId from,
                              std::vector<gossip::OutboundMessage> out) {
  for (auto& message : out) {
    ++stats_.messages_sent;
    stats_.bytes_sent += message.size_bytes;
    switch (message.payload.index()) {
      case gossip::kPushIndex: ++stats_.push_messages; break;
      case gossip::kPullRequestIndex:
      case gossip::kPullResponseIndex: ++stats_.pull_messages; break;
      case gossip::kAckIndex: ++stats_.ack_messages; break;
      default: ++stats_.query_messages; break;
    }
    Event delivery;
    delivery.at = now_ + config_.latency->sample(rng_);
    delivery.kind = EventKind::kDelivery;
    delivery.peer = message.to;
    delivery.from = from;
    delivery.payload =
        std::make_shared<gossip::GossipPayload>(std::move(message.payload));
    delivery.size_bytes = message.size_bytes;
    push_event(std::move(delivery));
  }
}

void EventSimulator::execute(Event& event) {
  const common::Round round = round_of(now_);
  switch (event.kind) {
    case EventKind::kDelivery: {
      const auto idx = event.peer.value();
      if (loss_ > 0.0 && rng_.bernoulli(loss_)) {
        ++stats_.messages_lost;  // brownout window
        return;
      }
      if (!online_[idx]) {
        // §3: an unreachable peer is indistinguishable from an offline one.
        ++stats_.messages_to_offline;
        return;
      }
      ++stats_.messages_delivered;
      send_all(event.peer,
               nodes_[idx]->handle_message(event.from, *event.payload, round));
      return;
    }
    case EventKind::kTransition: {
      const auto idx = event.peer.value();
      online_[idx] = !online_[idx];
      if (online_[idx]) {
        ++stats_.reconnects;
        send_all(event.peer, nodes_[idx]->on_reconnect(round));
      } else {
        nodes_[idx]->on_disconnect(round);
      }
      Event next;
      next.at = sessions_.next_transition(rng_, online_[idx], now_);
      next.kind = EventKind::kTransition;
      next.peer = event.peer;
      push_event(std::move(next));
      return;
    }
    case EventKind::kTimerTick: {
      const auto idx = event.peer.value();
      if (online_[idx]) {
        send_all(event.peer, nodes_[idx]->on_round_start(round));
      }
      Event next;
      next.at = now_ + config_.round_duration;
      next.kind = EventKind::kTimerTick;
      next.peer = event.peer;
      push_event(std::move(next));
      return;
    }
    case EventKind::kPublish: {
      common::PeerId publisher = event.peer;
      if (!event.has_publisher || !online_[publisher.value()]) {
        // Choose an online peer — preferring confident (recently synced)
        // ones, where a user would realistically originate a write; drop
        // the publish when the network is dark.
        std::vector<common::PeerId> online_peers;
        std::vector<common::PeerId> confident_peers;
        for (std::uint32_t i = 0; i < config_.population; ++i) {
          if (!online_[i]) continue;
          online_peers.emplace_back(i);
          if (nodes_[i]->confident(round)) confident_peers.emplace_back(i);
        }
        if (online_peers.empty()) return;
        const auto& pool =
            confident_peers.empty() ? online_peers : confident_peers;
        publisher = pool[rng_.pick_index(pool.size())];
      }
      auto& node = *nodes_[publisher.value()];
      if (event.tombstone) {
        send_all(publisher, node.remove(event.key, round));
        return;
      }
      send_all(publisher, node.publish(event.key, std::move(event.value), round));
      const auto value = node.read(event.key);
      UPDP2P_ENSURE(value.has_value(), "publish must leave a readable value");
      published_.push_back(
          PublishedUpdate{event.key, value->id, now_, publisher});
      return;
    }
    case EventKind::kLossChange: {
      loss_ = event.loss;
      return;
    }
  }
}

void EventSimulator::schedule_publish(common::SimTime at, std::string key,
                                      std::string payload,
                                      std::optional<common::PeerId> publisher) {
  UPDP2P_ENSURE(at >= now_, "cannot schedule a publish in the past");
  Event event;
  event.at = at;
  event.kind = EventKind::kPublish;
  event.key = std::move(key);
  event.value = std::move(payload);
  if (publisher.has_value()) {
    event.peer = *publisher;
    event.has_publisher = true;
  }
  push_event(std::move(event));
}

void EventSimulator::schedule_remove(common::SimTime at, std::string key,
                                     std::optional<common::PeerId> publisher) {
  UPDP2P_ENSURE(at >= now_, "cannot schedule a removal in the past");
  Event event;
  event.at = at;
  event.kind = EventKind::kPublish;
  event.key = std::move(key);
  event.tombstone = true;
  if (publisher.has_value()) {
    event.peer = *publisher;
    event.has_publisher = true;
  }
  push_event(std::move(event));
}

void EventSimulator::schedule_loss_window(common::SimTime at,
                                          common::SimTime until, double loss) {
  UPDP2P_ENSURE(at >= now_ && until >= at, "window must lie in the future");
  UPDP2P_ENSURE(loss >= 0.0 && loss <= 1.0, "loss probability in [0,1]");
  Event begin;
  begin.at = at;
  begin.kind = EventKind::kLossChange;
  begin.loss = loss;
  push_event(std::move(begin));
  Event end;
  end.at = until;
  end.kind = EventKind::kLossChange;
  end.loss = 0.0;
  push_event(std::move(end));
}

void EventSimulator::run_until(common::SimTime end) {
  while (!queue_.empty() && queue_.top().at <= end) {
    Event event = queue_.top();
    queue_.pop();
    now_ = event.at;
    execute(event);
  }
  now_ = std::max(now_, end);
}

std::size_t EventSimulator::online_count() const noexcept {
  return static_cast<std::size_t>(
      std::count(online_.begin(), online_.end(), true));
}

double EventSimulator::aware_fraction_online(
    const version::VersionId& id) const {
  std::size_t online = 0;
  std::size_t aware = 0;
  for (std::uint32_t i = 0; i < config_.population; ++i) {
    if (!online_[i]) continue;
    ++online;
    if (nodes_[i]->knows_version(id)) ++aware;
  }
  return online == 0 ? 0.0
                     : static_cast<double>(aware) / static_cast<double>(online);
}

double EventSimulator::aware_fraction_total(
    const version::VersionId& id) const {
  std::size_t aware = 0;
  for (std::uint32_t i = 0; i < config_.population; ++i) {
    if (nodes_[i]->knows_version(id)) ++aware;
  }
  return static_cast<double>(aware) / static_cast<double>(config_.population);
}

std::uint64_t EventSimulator::begin_query(common::PeerId issuer,
                                          std::string_view key,
                                          gossip::QueryRule rule,
                                          std::size_t replicas_to_ask) {
  if (!online_[issuer.value()]) return 0;
  auto started = nodes_[issuer.value()]->begin_query(key, rule,
                                                     replicas_to_ask,
                                                     round_of(now_));
  send_all(issuer, std::move(started.messages));
  return started.nonce;
}

gossip::QueryOutcome EventSimulator::poll_query(common::PeerId issuer,
                                                std::uint64_t nonce) {
  return nodes_[issuer.value()]->poll_query(nonce, round_of(now_));
}

std::optional<version::VersionedValue> EventSimulator::query(
    std::string_view key, std::size_t replicas_to_ask,
    gossip::QueryRule rule) {
  std::vector<common::PeerId> online_peers;
  for (std::uint32_t i = 0; i < config_.population; ++i) {
    if (online_[i]) online_peers.emplace_back(i);
  }
  if (online_peers.empty()) return std::nullopt;

  rng_.shuffle(std::span<common::PeerId>(online_peers));
  const std::size_t ask = std::min(replicas_to_ask, online_peers.size());
  const common::Round round = round_of(now_);

  std::vector<gossip::QueryAnswer> answers;
  answers.reserve(ask);
  for (std::size_t i = 0; i < ask; ++i) {
    const auto& node = *nodes_[online_peers[i].value()];
    answers.push_back(gossip::QueryAnswer{online_peers[i], node.read(key),
                                          node.confident(round)});
  }
  return gossip::resolve_query(answers, rule);
}

}  // namespace updp2p::sim
