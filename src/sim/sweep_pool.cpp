#include "sim/sweep_pool.hpp"

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace updp2p::sim {

namespace {
thread_local bool t_inside_pool_task = false;
}  // namespace

struct SweepPool::Impl {
  /// One sweep's complete state. Workers drain a shared_ptr snapshot taken
  /// under the pool mutex, so a worker lingering in drain() after the sweep
  /// completed keeps operating on *its* job: it can neither claim indices
  /// from nor over-count completions of a job published by a later run().
  /// The snapshot also keeps the Job alive past run(); the task functional
  /// it points to stays valid because a worker only dereferences it for a
  /// claimed index < count, and run() cannot return before done == count.
  struct Job {
    const std::function<void(unsigned)>* task = nullptr;
    unsigned count = 0;
    std::atomic<unsigned> next{0};     ///< work-stealing index
    std::atomic<unsigned> done{0};     ///< tasks completed
    std::atomic<int> worker_slots{0};  ///< pool workers allowed to join
    std::exception_ptr first_error;    // guarded-by(mutex)
  };

  std::mutex run_mutex;  ///< serialises concurrent run() callers

  std::mutex mutex;
  std::condition_variable work_cv;  ///< wakes workers for a new job
  std::condition_variable done_cv;  ///< wakes the caller on completion

  std::uint64_t generation = 0;  ///< bumped per published job — guarded-by(mutex)
  std::shared_ptr<Job> job;      ///< current job — guarded-by(mutex)

  bool stopping = false;  // guarded-by(mutex)
  std::vector<std::thread> workers;

  void drain(Job& j) {
    t_inside_pool_task = true;
    unsigned index;
    // The claim itself can be relaxed: every thread reads j.task/j.count
    // through the mutex-published snapshot, and completion ordering is
    // carried by `done` below.
    while ((index = j.next.fetch_add(1, std::memory_order_relaxed)) <
           j.count) {
      try {
        (*j.task)(index);
      } catch (...) {
        std::lock_guard<std::mutex> lock(mutex);
        if (!j.first_error) j.first_error = std::current_exception();
      }
      // Release pairs with the caller's acquire load in run(): when done
      // reaches count, every task's side effects are visible to the caller.
      if (j.done.fetch_add(1, std::memory_order_acq_rel) + 1 == j.count) {
        std::lock_guard<std::mutex> lock(mutex);
        done_cv.notify_all();
      }
    }
    t_inside_pool_task = false;
  }

  void worker_loop() {
    std::uint64_t seen = 0;
    while (true) {
      std::shared_ptr<Job> current;
      {
        std::unique_lock<std::mutex> lock(mutex);
        work_cv.wait(lock, [&] { return stopping || generation != seen; });
        if (stopping) return;
        seen = generation;
        current = job;
      }
      if (!current) continue;
      // Respect the caller's max_workers by claiming a participation slot.
      if (current->worker_slots.fetch_sub(1, std::memory_order_acq_rel) > 0) {
        drain(*current);
      }
    }
  }
};

SweepPool::SweepPool() : impl_(new Impl) {
  // At least two workers even on a single-core host: the sharded round
  // engine promises bit-identical results under real concurrency, and the
  // ThreadSanitizer suite can only observe cross-thread handoffs that
  // actually happen. Idle workers cost one blocked thread each.
  const unsigned hardware =
      std::max(2u, std::thread::hardware_concurrency());
  impl_->workers.reserve(hardware);
  for (unsigned i = 0; i < hardware; ++i) {
    impl_->workers.emplace_back([this] { impl_->worker_loop(); });
  }
}

SweepPool::~SweepPool() {
  {
    std::lock_guard<std::mutex> lock(impl_->mutex);
    impl_->stopping = true;
    impl_->work_cv.notify_all();
  }
  for (auto& worker : impl_->workers) worker.join();
  delete impl_;
}

SweepPool& SweepPool::shared() {
  static SweepPool pool;
  return pool;
}

void SweepPool::run(unsigned count, unsigned max_workers,
                    const std::function<void(unsigned)>& task) {
  if (count == 0) return;
  if (t_inside_pool_task) {
    // Nested sweep from inside a task: run inline to avoid self-deadlock.
    for (unsigned i = 0; i < count; ++i) task(i);
    return;
  }
  if (max_workers == 0) {
    max_workers = std::max(1u, std::thread::hardware_concurrency());
  }

  std::lock_guard<std::mutex> run_lock(impl_->run_mutex);
  auto job = std::make_shared<Impl::Job>();
  job->task = &task;
  job->count = count;
  // The caller participates, so the pool contributes one thread fewer.
  job->worker_slots.store(static_cast<int>(max_workers) - 1,
                          std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(impl_->mutex);
    impl_->job = job;
    ++impl_->generation;
    impl_->work_cv.notify_all();
  }

  impl_->drain(*job);

  std::unique_lock<std::mutex> lock(impl_->mutex);
  impl_->done_cv.wait(lock, [&] {
    return job->done.load(std::memory_order_acquire) >= job->count;
  });
  // Drop the pool's reference; lingering drainers hold their own snapshot.
  impl_->job.reset();
  if (job->first_error) std::rethrow_exception(job->first_error);
}

}  // namespace updp2p::sim
