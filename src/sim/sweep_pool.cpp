#include "sim/sweep_pool.hpp"

#include <atomic>
#include <condition_variable>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

namespace updp2p::sim {

namespace {
thread_local bool t_inside_pool_task = false;
}  // namespace

struct SweepPool::Impl {
  std::mutex run_mutex;  ///< serialises concurrent run() callers

  std::mutex mutex;
  std::condition_variable work_cv;  ///< wakes workers for a new job
  std::condition_variable done_cv;  ///< wakes the caller on completion

  // Current job (valid while task != nullptr).
  std::uint64_t generation = 0;
  const std::function<void(unsigned)>* task = nullptr;
  unsigned count = 0;
  std::atomic<unsigned> next{0};        ///< work-stealing index
  std::atomic<unsigned> done{0};        ///< tasks completed
  std::atomic<int> worker_slots{0};     ///< pool workers allowed to join
  std::exception_ptr first_error;

  bool stopping = false;
  std::vector<std::thread> workers;

  void drain() {
    t_inside_pool_task = true;
    unsigned index;
    // acq_rel pairs with the release store of `next` in run(): a worker
    // that claims an index is guaranteed to see the job's task and count.
    while ((index = next.fetch_add(1, std::memory_order_acq_rel)) < count) {
      try {
        (*task)(index);
      } catch (...) {
        std::lock_guard<std::mutex> lock(mutex);
        if (!first_error) first_error = std::current_exception();
      }
      if (done.fetch_add(1, std::memory_order_acq_rel) + 1 == count) {
        std::lock_guard<std::mutex> lock(mutex);
        done_cv.notify_all();
      }
    }
    t_inside_pool_task = false;
  }

  void worker_loop() {
    std::uint64_t seen = 0;
    while (true) {
      {
        std::unique_lock<std::mutex> lock(mutex);
        work_cv.wait(lock,
                     [&] { return stopping || generation != seen; });
        if (stopping) return;
        seen = generation;
      }
      // Respect the caller's max_workers by claiming a participation slot.
      if (worker_slots.fetch_sub(1, std::memory_order_acq_rel) > 0) {
        drain();
      }
    }
  }
};

SweepPool::SweepPool() : impl_(new Impl) {
  const unsigned hardware =
      std::max(1u, std::thread::hardware_concurrency());
  impl_->workers.reserve(hardware);
  for (unsigned i = 0; i < hardware; ++i) {
    impl_->workers.emplace_back([this] { impl_->worker_loop(); });
  }
}

SweepPool::~SweepPool() {
  {
    std::lock_guard<std::mutex> lock(impl_->mutex);
    impl_->stopping = true;
    impl_->work_cv.notify_all();
  }
  for (auto& worker : impl_->workers) worker.join();
  delete impl_;
}

SweepPool& SweepPool::shared() {
  static SweepPool pool;
  return pool;
}

void SweepPool::run(unsigned count, unsigned max_workers,
                    const std::function<void(unsigned)>& task) {
  if (count == 0) return;
  if (t_inside_pool_task) {
    // Nested sweep from inside a task: run inline to avoid self-deadlock.
    for (unsigned i = 0; i < count; ++i) task(i);
    return;
  }
  if (max_workers == 0) {
    max_workers = std::max(1u, std::thread::hardware_concurrency());
  }

  std::lock_guard<std::mutex> run_lock(impl_->run_mutex);
  {
    std::lock_guard<std::mutex> lock(impl_->mutex);
    impl_->task = &task;
    impl_->count = count;
    impl_->next.store(0, std::memory_order_relaxed);
    impl_->done.store(0, std::memory_order_relaxed);
    // The caller participates, so the pool contributes one thread fewer.
    impl_->worker_slots.store(static_cast<int>(max_workers) - 1,
                              std::memory_order_relaxed);
    impl_->first_error = nullptr;
    ++impl_->generation;
    impl_->work_cv.notify_all();
  }

  impl_->drain();

  std::unique_lock<std::mutex> lock(impl_->mutex);
  impl_->done_cv.wait(lock, [&] {
    return impl_->done.load(std::memory_order_acquire) >= impl_->count;
  });
  impl_->task = nullptr;
  if (impl_->first_error) std::rethrow_exception(impl_->first_error);
}

}  // namespace updp2p::sim
