#include "sim/workload.hpp"

#include <algorithm>

#include "common/ensure.hpp"

namespace updp2p::sim {

WorkloadGenerator::WorkloadGenerator(WorkloadConfig config)
    : config_(config), rng_(config.seed), revision_(config.key_count, 0) {
  UPDP2P_ENSURE(config_.key_count > 0, "need at least one key");
  UPDP2P_ENSURE(config_.zipf_exponent >= 0.0, "zipf exponent >= 0");
  UPDP2P_ENSURE(config_.update_rate >= 0.0 && config_.query_rate >= 0.0,
                "rates must be non-negative");
}

std::string WorkloadGenerator::key_name(std::size_t rank) {
  return "key-" + std::to_string(rank);
}

std::vector<Operation> WorkloadGenerator::generate(common::SimTime horizon) {
  std::vector<Operation> operations;

  auto pick_key = [this]() -> std::size_t {
    if (config_.zipf_exponent <= 0.0) {
      return rng_.pick_index(config_.key_count);
    }
    return static_cast<std::size_t>(
        rng_.zipf(config_.key_count, config_.zipf_exponent));
  };

  // Two independent Poisson processes, merged and sorted.
  if (config_.update_rate > 0.0) {
    common::SimTime t = rng_.exponential(config_.update_rate);
    while (t < horizon) {
      Operation op;
      op.kind = Operation::Kind::kUpdate;
      op.at = t;
      const std::size_t rank = pick_key();
      op.key = key_name(rank);
      op.payload = op.key + "#rev" + std::to_string(++revision_[rank]);
      operations.push_back(std::move(op));
      t += rng_.exponential(config_.update_rate);
    }
  }
  if (config_.query_rate > 0.0) {
    common::SimTime t = rng_.exponential(config_.query_rate);
    while (t < horizon) {
      Operation op;
      op.kind = Operation::Kind::kQuery;
      op.at = t;
      op.key = key_name(pick_key());
      operations.push_back(std::move(op));
      t += rng_.exponential(config_.query_rate);
    }
  }
  std::sort(operations.begin(), operations.end(),
            [](const Operation& a, const Operation& b) { return a.at < b.at; });
  return operations;
}

}  // namespace updp2p::sim
