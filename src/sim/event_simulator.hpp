// Continuous-time, event-driven simulator.
//
// The round model (round_simulator.hpp) matches the paper's push-phase
// analysis; this engine covers everything the analysis abstracts away:
// peers with exponential online/offline sessions (churn::SessionProcess),
// per-message latency, pull-on-reconnect, lazy pull, overlapping push and
// pull phases, and query servicing while updates propagate (§4.3, §4.4,
// §6). Push rounds are recovered from the hop counter inside push messages,
// so PF(t) behaves identically in both engines.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <queue>
#include <string>
#include <vector>

#include "churn/churn_model.hpp"
#include "common/rng.hpp"
#include "common/types.hpp"
#include "gossip/node.hpp"
#include "gossip/query.hpp"
#include "net/latency.hpp"

namespace updp2p::sim {

struct EventSimConfig {
  std::size_t population = 200;
  gossip::GossipConfig gossip;
  /// Exponential session parameters; availability is on/(on+off).
  double mean_online_time = 100.0;
  double mean_offline_time = 900.0;
  /// SimTime per push round; also the cadence of per-peer timer ticks.
  double round_duration = 1.0;
  /// One-way message latency model; defaults to round_duration / 2.
  std::shared_ptr<net::LatencyModel> latency;
  std::size_t initial_view_size = 0;  ///< 0 = full membership
  std::uint64_t seed = 0x5eed;
};

/// Record of one published update.
struct PublishedUpdate {
  std::string key;
  version::VersionId id;
  common::SimTime published_at = 0.0;
  common::PeerId publisher;
};

/// Network-level counters of the event engine.
struct EventSimStats {
  std::uint64_t messages_sent = 0;
  std::uint64_t messages_delivered = 0;
  std::uint64_t messages_to_offline = 0;
  std::uint64_t messages_lost = 0;  ///< dropped by a loss window
  std::uint64_t push_messages = 0;
  std::uint64_t pull_messages = 0;
  std::uint64_t ack_messages = 0;
  std::uint64_t query_messages = 0;
  std::uint64_t bytes_sent = 0;
  std::uint64_t reconnects = 0;
};

class EventSimulator {
 public:
  explicit EventSimulator(EventSimConfig config);

  /// Schedules a publish at `at`; when `publisher` is nullopt an online
  /// peer is chosen at publish time. The resulting version id is available
  /// from published() once the event has executed.
  void schedule_publish(common::SimTime at, std::string key,
                        std::string payload,
                        std::optional<common::PeerId> publisher = std::nullopt);

  /// Schedules a deletion: a tombstone/death certificate is written and
  /// pushed exactly like an update (paper §3).
  void schedule_remove(common::SimTime at, std::string key,
                       std::optional<common::PeerId> publisher = std::nullopt);

  /// Failure injection: from `at` until `until`, every message is lost with
  /// probability `loss` (a network brownout; 1.0 = total blackout). Windows
  /// may be scheduled back to back; the loss rate reverts to 0 afterwards.
  void schedule_loss_window(common::SimTime at, common::SimTime until,
                            double loss);

  [[nodiscard]] double current_loss() const noexcept { return loss_; }

  /// Runs the event loop until `end` (inclusive of events at `end`).
  void run_until(common::SimTime end);

  /// Issues a query now: contacts up to `replicas_to_ask` online replicas
  /// and resolves their answers (§4.4). Returns nullopt when nothing was
  /// found or nobody was online. This is the *omniscient* variant (reads
  /// stores directly); use begin_query/poll_query for the message-based
  /// protocol.
  [[nodiscard]] std::optional<version::VersionedValue> query(
      std::string_view key, std::size_t replicas_to_ask,
      gossip::QueryRule rule);

  /// Message-based §4.4 query issued by `issuer` (must be online): query
  /// requests travel the network like any other message. Returns the nonce
  /// to poll with, or 0 if the issuer is offline.
  std::uint64_t begin_query(common::PeerId issuer, std::string_view key,
                            gossip::QueryRule rule,
                            std::size_t replicas_to_ask);

  /// Polls a message-based query at the issuer; complete once all replies
  /// arrived or the node-side timeout elapsed.
  [[nodiscard]] gossip::QueryOutcome poll_query(common::PeerId issuer,
                                                std::uint64_t nonce);

  [[nodiscard]] common::SimTime now() const noexcept { return now_; }
  [[nodiscard]] bool is_online(common::PeerId peer) const {
    return online_[peer.value()];
  }
  [[nodiscard]] std::size_t online_count() const noexcept;
  [[nodiscard]] gossip::ReplicaNode& node(common::PeerId peer) {
    return *nodes_.at(peer.value());
  }
  [[nodiscard]] const gossip::ReplicaNode& node(common::PeerId peer) const {
    return *nodes_.at(peer.value());
  }
  [[nodiscard]] std::size_t population() const noexcept {
    return nodes_.size();
  }
  [[nodiscard]] const std::vector<PublishedUpdate>& published() const noexcept {
    return published_;
  }
  [[nodiscard]] const EventSimStats& stats() const noexcept { return stats_; }

  /// Fraction of currently-online peers that know version `id`.
  [[nodiscard]] double aware_fraction_online(const version::VersionId& id) const;
  /// Fraction of the *whole* population that knows version `id`.
  [[nodiscard]] double aware_fraction_total(const version::VersionId& id) const;

 private:
  enum class EventKind : std::uint8_t {
    kDelivery,
    kTransition,
    kTimerTick,
    kPublish,
    kLossChange,
  };

  struct Event {
    common::SimTime at = 0.0;
    std::uint64_t seq = 0;  // FIFO tiebreak for equal times
    EventKind kind = EventKind::kDelivery;
    common::PeerId peer;                    // transition/timer/publish target
    common::PeerId from;                    // delivery sender
    std::shared_ptr<gossip::GossipPayload> payload;  // delivery
    std::uint64_t size_bytes = 0;
    std::string key;      // publish
    std::string value;    // publish
    bool has_publisher = false;
    bool tombstone = false;    // publish: remove instead of write
    double loss = 0.0;         // loss-change events

    friend bool operator>(const Event& a, const Event& b) {
      return a.at != b.at ? a.at > b.at : a.seq > b.seq;
    }
  };

  void push_event(Event event);
  void execute(Event& event);
  void send_all(common::PeerId from, std::vector<gossip::OutboundMessage> out);
  [[nodiscard]] common::Round round_of(common::SimTime t) const {
    return static_cast<common::Round>(t / config_.round_duration);
  }

  EventSimConfig config_;
  common::Rng rng_;
  churn::SessionProcess sessions_;
  /// Single-threaded engine: one scratch arena serves every node.
  gossip::WorkArena arena_;
  std::vector<std::unique_ptr<gossip::ReplicaNode>> nodes_;
  std::vector<bool> online_;
  std::priority_queue<Event, std::vector<Event>, std::greater<>> queue_;
  std::uint64_t next_seq_ = 0;
  common::SimTime now_ = 0.0;
  double loss_ = 0.0;  // current brownout loss probability
  std::vector<PublishedUpdate> published_;
  EventSimStats stats_;
};

}  // namespace updp2p::sim
