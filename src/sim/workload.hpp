// Workload generation for sustained-update experiments.
//
// The paper assumes "consecutive updates are distributed sparsely" (§2).
// The workload generator produces update/query streams so experiments can
// both stay inside that assumption and deliberately violate it (update
// storms), with the skewed key popularity ("hot items", §2) real systems
// exhibit.
#pragma once

#include <string>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"

namespace updp2p::sim {

struct WorkloadConfig {
  std::size_t key_count = 50;
  /// Zipf exponent of key popularity (0 = uniform; ~1 = web-like skew).
  double zipf_exponent = 0.9;
  /// Mean updates per unit of simulated time (Poisson arrivals).
  double update_rate = 0.05;
  /// Mean queries per unit of simulated time.
  double query_rate = 0.5;
  std::uint64_t seed = 0x30ad;
};

/// One generated operation.
struct Operation {
  enum class Kind { kUpdate, kQuery } kind = Kind::kUpdate;
  common::SimTime at = 0.0;
  std::string key;
  std::string payload;  ///< updates only; carries a monotone revision tag
};

/// Generates a time-ordered operation stream over [0, horizon).
class WorkloadGenerator {
 public:
  explicit WorkloadGenerator(WorkloadConfig config);

  [[nodiscard]] std::vector<Operation> generate(common::SimTime horizon);

  /// The key name for a popularity rank (rank 0 = hottest).
  [[nodiscard]] static std::string key_name(std::size_t rank);

 private:
  WorkloadConfig config_;
  common::Rng rng_;
  std::vector<std::uint64_t> revision_;  ///< per-key update counter
};

}  // namespace updp2p::sim
