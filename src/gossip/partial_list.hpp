// Partial flooding-list maintenance.
//
// §4.2: the list may be bounded by a threshold length, "achieved by
// discarding either random entries or the head or tail of the partial
// list"; forwarding nodes then "pay the penalty of forwarding extra
// messages" but awareness growth is unchanged.
//
// The list is a compressed ChunkedPeerSet ordered by peer id, so the
// head/tail drop policies order by id: kDropHead discards the lowest ids
// (keeps the highest), kDropTail discards the highest. kDropRandom samples
// the survivors uniformly straight from the compressed form — the merged
// list never materialises as a vector.
#pragma once

#include <span>
#include <vector>

#include "common/chunked_peer_set.hpp"
#include "common/rng.hpp"
#include "common/types.hpp"
#include "gossip/config.hpp"

namespace updp2p::gossip {

/// Builds the outgoing R_f into `out` (replacing its contents): the union
/// of the received list, the forwarder itself and the newly chosen
/// targets, then the configured cap. kNone yields an empty list. With warm
/// chunk buffers the call performs no heap allocation. Works with either
/// RNG engine (Rng or StreamRng); instantiated for both in the .cpp.
template <typename RngT>
void build_forward_list_into(const PartialListConfig& config,
                             const common::ChunkedPeerSet& received,
                             std::span<const common::PeerId> new_targets,
                             common::PeerId self, RngT& rng,
                             common::ChunkedPeerSet& out);

/// Allocating convenience wrapper around build_forward_list_into.
template <typename RngT>
[[nodiscard]] common::ChunkedPeerSet build_forward_list(
    const PartialListConfig& config, const common::ChunkedPeerSet& received,
    const std::vector<common::PeerId>& new_targets, common::PeerId self,
    RngT& rng);

}  // namespace updp2p::gossip
