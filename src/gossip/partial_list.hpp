// Partial flooding-list maintenance.
//
// §4.2: the list may be bounded by a threshold length, "achieved by
// discarding either random entries or the head or tail of the partial
// list"; forwarding nodes then "pay the penalty of forwarding extra
// messages" but awareness growth is unchanged.
#pragma once

#include <span>
#include <vector>

#include "common/dense_peer_set.hpp"
#include "common/rng.hpp"
#include "common/types.hpp"
#include "gossip/config.hpp"

namespace updp2p::gossip {

/// Merges the received list with the newly chosen targets (plus the
/// forwarder itself), de-duplicates preserving order of first appearance,
/// and applies the configured cap, writing the result into `out`
/// (replacing its contents). `seen_scratch` is caller-provided dedup
/// scratch, cleared here in O(1) — with warm buffers the call performs no
/// heap allocation. kNone yields an empty list. Works with either RNG
/// engine (Rng or StreamRng); instantiated for both in the .cpp.
template <typename RngT>
void build_forward_list_into(const PartialListConfig& config,
                             std::span<const common::PeerId> received,
                             std::span<const common::PeerId> new_targets,
                             common::PeerId self, RngT& rng,
                             common::DensePeerSet& seen_scratch,
                             std::vector<common::PeerId>& out);

/// Allocating convenience wrapper around build_forward_list_into.
template <typename RngT>
[[nodiscard]] std::vector<common::PeerId> build_forward_list(
    const PartialListConfig& config,
    const std::vector<common::PeerId>& received,
    const std::vector<common::PeerId>& new_targets, common::PeerId self,
    RngT& rng);

}  // namespace updp2p::gossip
