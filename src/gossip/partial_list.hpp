// Partial flooding-list maintenance.
//
// §4.2: the list may be bounded by a threshold length, "achieved by
// discarding either random entries or the head or tail of the partial
// list"; forwarding nodes then "pay the penalty of forwarding extra
// messages" but awareness growth is unchanged.
#pragma once

#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "gossip/config.hpp"

namespace updp2p::gossip {

/// Merges the received list with the newly chosen targets (plus the
/// forwarder itself), de-duplicates preserving order of first appearance,
/// and applies the configured cap. Returns the list to attach to the
/// outgoing push. kNone yields an empty list.
[[nodiscard]] std::vector<common::PeerId> build_forward_list(
    const PartialListConfig& config,
    const std::vector<common::PeerId>& received,
    const std::vector<common::PeerId>& new_targets, common::PeerId self,
    common::Rng& rng);

}  // namespace updp2p::gossip
