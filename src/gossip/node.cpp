#include "gossip/node.hpp"

#include <algorithm>

#include "gossip/codec.hpp"
#include "gossip/partial_list.hpp"

namespace updp2p::gossip {

ReplicaNode::ReplicaNode(common::PeerId self, GossipConfig config,
                         common::StreamRng rng)
    : self_(self),
      config_(std::move(config)),
      rng_(rng),
      view_(self),
      writer_(self, common::Rng(rng.derive_seed(self.value()))),
      forward_(config_) {
  config_.validate();
  view_.set_preferred_weight(config_.acks.preferred_weight);
}

void ReplicaNode::bootstrap(std::span<const common::PeerId> initial_view) {
  view_.merge(initial_view);
}

void ReplicaNode::bootstrap(const common::ChunkedPeerSet& initial_view) {
  view_.merge(initial_view);
}

void ReplicaNode::import_durable_state(
    const common::ChunkedPeerSet& membership,
    std::vector<version::VersionedValue> values) {
  view_.merge(membership);
  for (version::VersionedValue& value : values) {
    seen_versions_.emplace(value.id, 0u);
    (void)store_.apply(std::move(value));
  }
}

void ReplicaNode::seed_fixed_neighbors(
    std::span<const common::PeerId> neighbors) {
  fixed_neighbors_.assign(neighbors.begin(), neighbors.end());
  std::erase(fixed_neighbors_, self_);
  view_.merge(neighbors);
}

OutboundMessage ReplicaNode::wrap(common::PeerId to, GossipPayload payload) {
  const std::uint64_t size = encoded_size(payload);
  stats_.bytes_sent += size;
  return OutboundMessage{to, std::move(payload), size};
}

// --- push phase ---------------------------------------------------------------

std::vector<common::PeerId>& ReplicaNode::select_targets(std::size_t count,
                                                         common::Round now) {
  std::vector<common::PeerId>& targets = arena().targets;
  if (config_.target_selection == TargetSelection::kRandomPerPush) {
    view_.sample_into(rng_, count, targets, nullptr, now);
    return targets;
  }
  // Fixed-neighbor overlay: the target set is drawn once and reused for
  // every update (topology-dependent gossip à la [20]).
  if (fixed_neighbors_.empty()) {
    view_.sample_into(rng_, config_.absolute_fanout(), fixed_neighbors_,
                      nullptr, now);
  }
  const std::size_t take = std::min(count, fixed_neighbors_.size());
  targets.assign(fixed_neighbors_.begin(),
                 fixed_neighbors_.begin() +
                     static_cast<std::ptrdiff_t>(take));
  return targets;
}

void ReplicaNode::start_push(version::VersionedValue value, common::Round now,
                             std::vector<OutboundMessage>& out) {
  ++stats_.updates_originated;
  seen_versions_.emplace(value.id, 0);
  note_activity(now);

  // Round 0: the initiator selects f_r·R replicas (§4.2).
  const std::vector<common::PeerId>& targets =
      select_targets(config_.absolute_fanout(), now);
  if (targets.empty()) return;
  build_forward_list_into(config_.partial_list,
                          /*received=*/common::ChunkedPeerSet(), targets,
                          self_, rng_, arena().list);

  // One shared buffer serves the whole fan-out: each message copy is a
  // refcount bump, not an O(|R_f|) vector (or version-vector) copy; the
  // wire size is identical across the fan-out, so compute it once.
  const GossipPayload payload(
      PushMessage{SharedValue(std::move(value)), SharedPeerList(arena().list),
                  /*round=*/0});
  const std::uint64_t size = encoded_size(payload);
  out.reserve(out.size() + targets.size());
  for (const common::PeerId target : targets) {
    stats_.bytes_sent += size;
    out.push_back(OutboundMessage{target, payload, size});
    ++stats_.pushes_forwarded;
    if (config_.acks.enabled) pending_acks_[target] = PendingAck{now};
  }
}

std::vector<OutboundMessage> ReplicaNode::publish(std::string_view key,
                                                  std::string payload,
                                                  common::Round now) {
  version::VersionedValue value = writer_.write(
      store_, key, std::move(payload), static_cast<common::SimTime>(now));
  std::vector<OutboundMessage> out;
  start_push(std::move(value), now, out);
  return out;
}

std::vector<OutboundMessage> ReplicaNode::remove(std::string_view key,
                                                 common::Round now) {
  version::VersionedValue tombstone =
      writer_.erase(store_, key, static_cast<common::SimTime>(now));
  std::vector<OutboundMessage> out;
  start_push(std::move(tombstone), now, out);
  return out;
}

bool ReplicaNode::note_push_received(common::PeerId from,
                                     const version::VersionId& id) {
  ++stats_.pushes_received;
  view_.add(from);
  view_.clear_presumed_offline(from);  // it is evidently online

  auto [seen_it, first_receipt] = seen_versions_.emplace(id, 0u);
  if (!first_receipt) {
    ++seen_it->second;
    ++stats_.duplicate_pushes;
    forward_.observe_push(/*duplicate=*/true);
    return false;  // ProcessedUpdate(U,V) == TRUE: push at most once (§3)
  }
  forward_.observe_push(/*duplicate=*/false);
  return true;
}

void ReplicaNode::handle_push(common::PeerId from, const PushMessage& push,
                              common::Round now,
                              std::vector<OutboundMessage>& out) {
  if (!note_push_received(from, push.value->id)) return;
  handle_push_first(from, push.value, push.round, push.flooding_list.set(),
                    now, out);
}

void ReplicaNode::handle_push_first(common::PeerId from,
                                    const SharedValue& value,
                                    common::Round push_round,
                                    const common::ChunkedPeerSet& flooded,
                                    common::Round now,
                                    std::vector<OutboundMessage>& out) {
  // Name-dropper membership dissemination (§7.2) on FIRST receipt only.
  // §3's pseudocode ignores a push whose update was already processed, so
  // a duplicate's flooding list is dropped with the rest of the message —
  // which also means the dominant duplicate-delivery path never pays a
  // set merge (at 100k replicas ~80% of deliveries are duplicates), and
  // the frame path (handle_frame) never even *decodes* it.
  stats_.members_discovered += view_.merge(flooded);

  const version::ApplyOutcome outcome = store_.apply(*value);
  if (outcome == version::ApplyOutcome::kApplied ||
      outcome == version::ApplyOutcome::kCoexisting) {
    ++stats_.updates_learned_push;
  }
  note_activity(now);

  // §6 lazy pull: the first push after reconnect identifies a live, likely
  // up-to-date peer — reconcile with exactly that peer.
  if (lazy_waiting_) {
    lazy_waiting_ = false;
    make_pull(now, out, from);
  }

  // §6 acknowledgement to the first pusher(s). This is the first receipt
  // (duplicate count 0), so any positive ack_first_k acks it.
  if (config_.acks.enabled && config_.acks.ack_first_k > 0) {
    out.push_back(wrap(from, AckMessage{value->id}));
    ++stats_.acks_sent;
  }

  // Forward with probability PF(t+1); the hop counter in the message is the
  // round the sender pushed in, so we push in round push_round + 1.
  const common::Round next_round = push_round + 1;
  const double list_fraction =
      static_cast<double>(flooded.size()) /
      static_cast<double>(config_.estimated_total_replicas);
  if (!forward_.should_forward(rng_, next_round, list_fraction)) {
    ++stats_.forwards_suppressed;
    return;
  }

  // Select R_p (f_r·R random replicas; f_r itself shrinks under §6
  // self-tuning), then push to R_p \ R_f: peers already on the flooding
  // list are *dropped*, not re-drawn — that is what shrinks the message
  // count by the (1−l(t)) factor of §4.2.
  std::vector<common::PeerId>& targets = select_targets(
      forward_.effective_fanout(config_.absolute_fanout(), list_fraction),
      now);
  // R_p \ R_f by direct probes into the compressed list: ~fanout contains()
  // calls (O(1) on bitmap chunks) replace materialising R_f into an
  // O(|R_f|) scratch set per delivery.
  std::erase_if(targets, [&flooded, from](common::PeerId peer) {
    return peer == from || flooded.contains(peer);
  });
  if (targets.empty()) return;

  build_forward_list_into(config_.partial_list, flooded, targets, self_,
                          rng_, arena().list);
  // Forwarded value and list are shared across the fan-out; the wire size
  // is identical for every target, so compute it once.
  const GossipPayload payload(
      PushMessage{value, SharedPeerList(arena().list), next_round});
  const std::uint64_t size = encoded_size(payload);
  out.reserve(out.size() + targets.size());
  for (const common::PeerId target : targets) {
    stats_.bytes_sent += size;
    out.push_back(OutboundMessage{target, payload, size});
    ++stats_.pushes_forwarded;
    if (config_.acks.enabled) pending_acks_[target] = PendingAck{now};
  }
}

bool ReplicaNode::handle_frame(common::PeerId from,
                               std::span<const std::byte> frame,
                               common::Round now,
                               std::vector<OutboundMessage>& out) {
  const auto probe = probe_frame(frame);
  if (!probe) return false;
  if (probe->kind == WireKind::kPush) {
    if (seen_versions_.contains(probe->version)) {
      // Duplicate classified from the probe alone: the dominant delivery
      // path at scale (~80% of 100k-replica deliveries) never decodes the
      // version vector or the flooding list. Only monotone bookkeeping
      // happens here (see probe_frame's trust contract) — `from` comes
      // from the transport/envelope, not the unvalidated frame tail.
      (void)note_push_received(from, probe->version);
      return true;
    }
    // First receipt: validate before mutate. The full streaming decode
    // runs BEFORE any node state changes, so a frame with a plausible
    // header but a garbage tail is rejected without side effects. The
    // flooding list streams into the arena's warm recv_list — no
    // temporary set, no allocation once the chunk buffers are warm.
    common::ChunkedPeerSet& list = arena().recv_list;
    auto push = decode_push_into(frame, list);
    if (!push) return false;
    // contains() above said no and nothing ran in between, so this is
    // always the first-receipt branch.
    (void)note_push_received(from, push->value.id);
    handle_push_first(from, SharedValue(std::move(push->value)), push->round,
                      list, now, out);
    return true;
  }
  // Non-push kinds carry no skippable bulk — decode fully and dispatch.
  const auto payload = decode(frame);
  if (!payload) return false;
  handle_message(from, *payload, now, out);
  return true;
}

// --- pull phase ---------------------------------------------------------------

void ReplicaNode::make_pull(common::Round now,
                            std::vector<OutboundMessage>& out,
                            std::optional<common::PeerId> target) {
  std::vector<common::PeerId>& contacts = arena().contacts;
  if (target.has_value()) {
    contacts.clear();
    contacts.push_back(*target);
  } else {
    view_.sample_into(rng_, config_.pull.contacts_per_attempt, contacts,
                      nullptr, now);
  }
  const PullRequest request{store_.summary(), store_.stored_ids(),
                            store_.content_digest()};
  out.reserve(out.size() + contacts.size());
  for (const common::PeerId contact : contacts) {
    out.push_back(wrap(contact, request));
    ++stats_.pull_requests_sent;
  }
  last_pull_round_ = now;
}

void ReplicaNode::handle_pull_request(common::PeerId from,
                                      const PullRequest& request,
                                      common::Round now,
                                      std::vector<OutboundMessage>& out) {
  ++stats_.pull_requests_received;
  view_.add(from);
  view_.clear_presumed_offline(from);

  const bool am_confident = confident(now);
  // Matching content digests mean identical stores: answer with an empty
  // (16-byte) response instead of computing and shipping deltas.
  const bool in_sync = request.store_digest == store_.content_digest();
  out.push_back(wrap(
      from, PullResponse{in_sync ? std::vector<version::VersionedValue>{}
                                 : store_.missing_for(request.have),
                         store_.summary(), am_confident}));

  // §3: "receives a pull request, but [is] not sure to have the latest
  // update" — the pulled party itself enters the pull phase.
  if (!am_confident && now > last_pull_round_) {
    make_pull(now, out);
  }
}

void ReplicaNode::handle_pull_response(common::PeerId from,
                                       const PullResponse& response,
                                       common::Round now) {
  ++stats_.pull_responses_received;
  view_.add(from);

  for (const auto& value : response.missing) {
    const version::ApplyOutcome outcome = store_.apply(value);
    seen_versions_.emplace(value.id, 0u);
    if (outcome == version::ApplyOutcome::kApplied ||
        outcome == version::ApplyOutcome::kCoexisting) {
      ++stats_.updates_learned_pull;
    }
  }
  // Reconciled with a peer; if that peer was confident we are in sync.
  needs_sync_ = needs_sync_ && !response.confident;
  lazy_waiting_ = false;
  note_activity(now);
}

void ReplicaNode::handle_ack(common::PeerId from, const AckMessage& /*ack*/) {
  ++stats_.acks_received;
  pending_acks_.erase(from);
  view_.mark_preferred(from);
  view_.clear_presumed_offline(from);
}

// --- query phase (§4.4) --------------------------------------------------------

StartedQuery ReplicaNode::begin_query(std::string_view key, QueryRule rule,
                                      std::size_t replicas_to_ask,
                                      common::Round now) {
  StartedQuery started;
  started.nonce = next_query_nonce_++;
  PendingQuery pending;
  pending.key = std::string(key);
  pending.rule = rule;
  pending.started = now;
  // This node's own store always participates in the vote.
  pending.answers.push_back(
      QueryAnswer{self_, store_.read(key), confident(now)});

  view_.sample_into(rng_, replicas_to_ask, arena().targets, nullptr, now);
  const std::vector<common::PeerId>& targets = arena().targets;
  pending.asked = targets.size();
  started.messages.reserve(targets.size());
  for (const common::PeerId target : targets) {
    started.messages.push_back(
        wrap(target, QueryRequest{pending.key, started.nonce}));
  }
  ++stats_.queries_issued;
  pending_queries_.emplace(started.nonce, std::move(pending));
  return started;
}

QueryOutcome ReplicaNode::poll_query(std::uint64_t nonce, common::Round now) {
  QueryOutcome outcome;
  const auto it = pending_queries_.find(nonce);
  if (it == pending_queries_.end()) {
    outcome.complete = true;  // unknown or already consumed
    return outcome;
  }
  PendingQuery& pending = it->second;
  outcome.asked = pending.asked;
  outcome.replies = pending.answers.size() - 1;  // minus the local answer
  const bool all_in = outcome.replies >= pending.asked;
  const bool timed_out = now - pending.started >= kQueryTimeoutRounds;
  if (!all_in && !timed_out) return outcome;  // still collecting

  outcome.complete = true;
  outcome.value = resolve_query(pending.answers, pending.rule);
  pending_queries_.erase(it);
  return outcome;
}

void ReplicaNode::handle_query_request(common::PeerId from,
                                       const QueryRequest& request,
                                       common::Round now,
                                       std::vector<OutboundMessage>& out) {
  ++stats_.query_requests_received;
  view_.add(from);

  QueryReply reply;
  reply.key = request.key;
  reply.nonce = request.nonce;
  reply.versions = store_.versions(request.key);
  reply.confident = confident(now);
  out.push_back(wrap(from, std::move(reply)));

  // §6: a replica that cannot answer confidently "will itself have to
  // initiate a pull".
  if (!confident(now) && now > last_pull_round_) {
    make_pull(now, out);
  }
}

void ReplicaNode::handle_query_reply(common::PeerId from,
                                     const QueryReply& reply) {
  ++stats_.query_replies_received;
  const auto it = pending_queries_.find(reply.nonce);
  if (it == pending_queries_.end()) return;  // late reply; query resolved
  if (it->second.key != reply.key) return;   // stale/mismatched nonce reuse
  // Reduce the responder's maximal set to its deterministic winner — one
  // vote per replica, as the majority logic of §4.4 requires.
  it->second.answers.push_back(
      QueryAnswer{from, local_winner(reply.versions), reply.confident});
}

// --- event dispatch --------------------------------------------------------------

void ReplicaNode::handle_message(common::PeerId from,
                                 const GossipPayload& payload,
                                 common::Round now,
                                 std::vector<OutboundMessage>& out) {
  std::visit(
      [this, from, now, &out](const auto& message) {
        using T = std::decay_t<decltype(message)>;
        if constexpr (std::is_same_v<T, PushMessage>) {
          handle_push(from, message, now, out);
        } else if constexpr (std::is_same_v<T, PullRequest>) {
          handle_pull_request(from, message, now, out);
        } else if constexpr (std::is_same_v<T, PullResponse>) {
          handle_pull_response(from, message, now);
        } else if constexpr (std::is_same_v<T, AckMessage>) {
          handle_ack(from, message);
        } else if constexpr (std::is_same_v<T, QueryRequest>) {
          handle_query_request(from, message, now, out);
        } else {
          static_assert(std::is_same_v<T, QueryReply>);
          handle_query_reply(from, message);
        }
      },
      payload);
}

std::vector<OutboundMessage> ReplicaNode::handle_message(
    common::PeerId from, const GossipPayload& payload, common::Round now) {
  std::vector<OutboundMessage> out;
  handle_message(from, payload, now, out);
  return out;
}

void ReplicaNode::on_reconnect(common::Round now,
                               std::vector<OutboundMessage>& out) {
  needs_sync_ = true;
  note_activity(now);
  if (config_.pull.lazy) {
    lazy_waiting_ = true;  // wait for the first push, then pull from there
    return;
  }
  make_pull(now, out);
}

std::vector<OutboundMessage> ReplicaNode::on_reconnect(common::Round now) {
  std::vector<OutboundMessage> out;
  on_reconnect(now, out);
  return out;
}

void ReplicaNode::on_round_start(common::Round now,
                                 std::vector<OutboundMessage>& out) {
  // §6: push targets that never acked are presumed offline for a while.
  if (config_.acks.enabled && config_.acks.suppression_rounds > 0) {
    for (auto it = pending_acks_.begin(); it != pending_acks_.end();) {
      if (now >= it->second.pushed_at + kAckWaitRounds) {
        view_.mark_presumed_offline(it->first,
                                    now + config_.acks.suppression_rounds);
        it = pending_acks_.erase(it);
      } else {
        ++it;
      }
    }
  }

  // §3: no update received within time T -> pull to resynchronise.
  const bool stale =
      now > last_activity_round_ &&
      now - last_activity_round_ > config_.pull.no_update_timeout;
  const bool pull_cooled_down =
      now > last_pull_round_ &&
      now - last_pull_round_ > config_.pull.no_update_timeout;
  if (stale && pull_cooled_down && !view_.empty()) {
    make_pull(now, out);
  }
}

std::vector<OutboundMessage> ReplicaNode::on_round_start(common::Round now) {
  std::vector<OutboundMessage> out;
  on_round_start(now, out);
  return out;
}

void ReplicaNode::on_disconnect(common::Round /*now*/) {
  // In-flight expectations die with the session.
  pending_acks_.clear();
  lazy_waiting_ = false;
}

bool ReplicaNode::confident(common::Round now) const {
  if (needs_sync_) return false;
  return now - last_activity_round_ <= config_.pull.no_update_timeout;
}

}  // namespace updp2p::gossip
