// ReplicaNode — one peer's complete hybrid push/pull protocol state.
//
// This is the library's primary public type. A node owns its versioned
// store, its partial replica view and the push/pull/ack state machines of
// the paper's §3 pseudocode plus the §6 optimisations. It is transport-
// agnostic: every event handler returns the messages the node wants sent,
// and the hosting environment (the bundled simulators, or a real network
// stack) delivers them — mirroring the paper's claim that propagation "may
// employ any point-to-point/multicast/ad-hoc communication mechanism".
//
// Timebase: handlers take the current push-round number. The event-driven
// simulator maps continuous time onto rounds; PF(t) itself depends only on
// the hop counter carried inside push messages, exactly as analysed.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/chunked_peer_set.hpp"
#include "common/rng.hpp"
#include "common/types.hpp"
#include "gossip/arena.hpp"
#include "gossip/config.hpp"
#include "gossip/forward_policy.hpp"
#include "gossip/messages.hpp"
#include "gossip/query.hpp"
#include "gossip/replica_view.hpp"
#include "version/store.hpp"

namespace updp2p::gossip {

/// Per-node protocol counters (all monotone; used by metrics & tests).
struct NodeStats {
  std::uint64_t pushes_received = 0;
  std::uint64_t duplicate_pushes = 0;     ///< push for an already-known version
  std::uint64_t pushes_forwarded = 0;     ///< outgoing push messages
  std::uint64_t forwards_suppressed = 0;  ///< PF(t) coin said no
  std::uint64_t updates_originated = 0;
  std::uint64_t updates_learned_push = 0;
  std::uint64_t updates_learned_pull = 0;
  std::uint64_t pull_requests_sent = 0;
  std::uint64_t pull_requests_received = 0;
  std::uint64_t pull_responses_received = 0;
  std::uint64_t acks_sent = 0;
  std::uint64_t acks_received = 0;
  std::uint64_t members_discovered = 0;   ///< peers learned from partial lists
  std::uint64_t queries_issued = 0;
  std::uint64_t query_requests_received = 0;
  std::uint64_t query_replies_received = 0;
  std::uint64_t bytes_sent = 0;           ///< wire-model bytes of all sends
};

/// A multi-replica query in flight (§4.4).
struct StartedQuery {
  std::uint64_t nonce = 0;
  std::vector<OutboundMessage> messages;  ///< requests to transmit
};

/// Progress/result of a pending query.
struct QueryOutcome {
  std::optional<version::VersionedValue> value;
  std::size_t asked = 0;
  std::size_t replies = 0;
  bool complete = false;  ///< all replicas answered, or the query timed out
};

class ReplicaNode {
 public:
  /// `rng` is the node's private counter-based stream; drivers key it as
  /// StreamRng(run_seed, node_id) so a node's draw sequence is a pure
  /// function of the messages it handles, independent of global iteration
  /// order (the sharded-simulation determinism contract).
  ReplicaNode(common::PeerId self, GossipConfig config, common::StreamRng rng);

  /// Shares the driver-owned scratch arena (see arena.hpp). The node and
  /// its view fall back to a private arena when none is wired. Nodes
  /// sharing an arena must never execute concurrently.
  void use_arena(WorkArena* arena) noexcept {
    arena_ = arena;
    view_.use_arena(arena);
  }

  /// Seeds the initial membership view ("each replica knows a minimal
  /// fraction of the complete set of replicas", §2).
  void bootstrap(std::span<const common::PeerId> initial_view);

  /// Compressed-form bootstrap: absorbs the whole set in one word-parallel
  /// merge instead of one insert per id. Lets a simulator build the
  /// full-membership set once and share it across every node — at 100k
  /// replicas this is the difference between O(population) and
  /// O(population/64) words touched per node.
  void bootstrap(const common::ChunkedPeerSet& initial_view);

  /// Durable-store recovery (src/store/): seeds the node from a snapshot.
  /// Merges the persisted membership set (self-tolerant and idempotent)
  /// and applies every persisted version, marking it processed so a
  /// replayed or re-received push for it classifies as a duplicate —
  /// exactly the state the node would hold had it received those versions
  /// live. Call before delivering any live traffic.
  void import_durable_state(const common::ChunkedPeerSet& membership,
                            std::vector<version::VersionedValue> values);

  /// kFixedNeighbors mode: supplies the static target set — the "topology
  /// knowledge" a directional-gossip-like scheme [20] would maintain (e.g.
  /// peers observed online at bootstrap). Peers are also added to the view.
  void seed_fixed_neighbors(std::span<const common::PeerId> neighbors);

  // --- application-facing API ------------------------------------------------

  /// Writes locally and initiates the push phase (round 0 of the update).
  [[nodiscard]] std::vector<OutboundMessage> publish(std::string_view key,
                                                     std::string payload,
                                                     common::Round now);

  /// Deletes via tombstone and propagates the death certificate.
  [[nodiscard]] std::vector<OutboundMessage> remove(std::string_view key,
                                                    common::Round now);

  /// Local read (§4.4 "version scheme": deterministic winner); may be stale
  /// — check confident() or use query.hpp's multi-replica resolution.
  [[nodiscard]] std::optional<version::VersionedValue> read(
      std::string_view key) const {
    return store_.read(key);
  }

  /// §3: a peer is confident when it synced recently and nothing suggests
  /// it missed updates while offline.
  [[nodiscard]] bool confident(common::Round now) const;

  /// Issues a §4.4 query: asks up to `replicas_to_ask` sampled replicas for
  /// their versions of `key`. Transmit the returned messages, then call
  /// poll_query(nonce) as replies arrive.
  [[nodiscard]] StartedQuery begin_query(std::string_view key,
                                         QueryRule rule,
                                         std::size_t replicas_to_ask,
                                         common::Round now);

  /// Progress of a pending query. Once `complete` (all replies in, or
  /// kQueryTimeoutRounds elapsed) the resolved value reflects every answer
  /// received — including this node's own store — and the query state is
  /// released; later polls report an empty, complete outcome.
  [[nodiscard]] QueryOutcome poll_query(std::uint64_t nonce,
                                        common::Round now);

  // --- environment-driven events --------------------------------------------

  /// Delivers one protocol message; returns the node's reactions.
  [[nodiscard]] std::vector<OutboundMessage> handle_message(
      common::PeerId from, const GossipPayload& payload, common::Round now);

  /// Hot-path variant: appends the node's reactions to `out` instead of
  /// returning a fresh vector, so a driver can reuse one buffer across the
  /// whole round. With warm scratch buffers a push round performs no
  /// per-call container allocation beyond the outbound payloads themselves.
  void handle_message(common::PeerId from, const GossipPayload& payload,
                      common::Round now, std::vector<OutboundMessage>& out);

  /// Zero-copy delivery of one ENCODED frame (codec bytes, no transport
  /// framing). A cheap header probe classifies the message first: a push
  /// for an already-seen version — the dominant delivery at scale — is
  /// counted as a duplicate without decoding the version vector or the
  /// flooding list; a first receipt streams its flooding list into the
  /// arena's recv_list scratch (decode_push_into); other kinds decode
  /// fully and dispatch through handle_message. Returns false (with NO
  /// protocol-state change) when the frame is malformed. Behaviour and RNG
  /// draw order are bit-identical to decoding the frame and calling
  /// handle_message — the wire-equivalence suite pins this.
  [[nodiscard]] bool handle_frame(common::PeerId from,
                                  std::span<const std::byte> frame,
                                  common::Round now,
                                  std::vector<OutboundMessage>& out);

  /// The peer just came back online: enter the pull phase (§3), or arm the
  /// lazy-pull trigger (§6).
  [[nodiscard]] std::vector<OutboundMessage> on_reconnect(common::Round now);
  /// Appending hot-path variant of on_reconnect.
  void on_reconnect(common::Round now, std::vector<OutboundMessage>& out);

  /// Per-round timer processing: ack timeouts (§6 suppression) and the
  /// no-update-for-too-long pull trigger (§3).
  [[nodiscard]] std::vector<OutboundMessage> on_round_start(common::Round now);
  /// Appending hot-path variant of on_round_start.
  void on_round_start(common::Round now, std::vector<OutboundMessage>& out);

  /// The peer went offline; in-flight expectations are abandoned.
  void on_disconnect(common::Round now);

  // --- introspection ----------------------------------------------------------

  [[nodiscard]] common::PeerId id() const noexcept { return self_; }
  [[nodiscard]] const version::VersionedStore& store() const noexcept {
    return store_;
  }
  [[nodiscard]] version::VersionedStore& store() noexcept { return store_; }
  [[nodiscard]] const ReplicaView& view() const noexcept { return view_; }
  [[nodiscard]] ReplicaView& view() noexcept { return view_; }
  [[nodiscard]] const NodeStats& stats() const noexcept { return stats_; }
  [[nodiscard]] const GossipConfig& config() const noexcept { return config_; }
  /// True while a lazy-pull is armed (reconnected, waiting for first push).
  [[nodiscard]] bool lazy_pull_armed() const noexcept { return lazy_waiting_; }
  /// Has this node stored the given version?
  [[nodiscard]] bool knows_version(const version::VersionId& id) const {
    return seen_versions_.contains(id);
  }

 private:
  // All internal handlers append to `out`; the returning public methods are
  // thin wrappers. This keeps the per-message path free of vector churn.
  void start_push(version::VersionedValue value, common::Round now,
                  std::vector<OutboundMessage>& out);
  void handle_push(common::PeerId from, const PushMessage& push,
                   common::Round now, std::vector<OutboundMessage>& out);
  /// Common bookkeeping of every push receipt (§3's ProcessedUpdate
  /// check): counters, view refresh, duplicate classification. Returns
  /// true on first receipt. Shared by the in-memory and frame paths so
  /// their observable behaviour cannot drift.
  bool note_push_received(common::PeerId from, const version::VersionId& id);
  /// The first-receipt tail of handle_push (merge, apply, ack, forward);
  /// `flooded` may alias the arena's recv_list scratch.
  void handle_push_first(common::PeerId from, const SharedValue& value,
                         common::Round push_round,
                         const common::ChunkedPeerSet& flooded,
                         common::Round now, std::vector<OutboundMessage>& out);
  void handle_pull_request(common::PeerId from, const PullRequest& request,
                           common::Round now,
                           std::vector<OutboundMessage>& out);
  void handle_pull_response(common::PeerId from, const PullResponse& response,
                            common::Round now);
  void handle_ack(common::PeerId from, const AckMessage& ack);
  void handle_query_request(common::PeerId from, const QueryRequest& request,
                            common::Round now,
                            std::vector<OutboundMessage>& out);
  void handle_query_reply(common::PeerId from, const QueryReply& reply);

  /// Emits pull requests to `contacts_per_attempt` sampled peers (or to an
  /// explicit target for the lazy-pull-from-pusher case).
  void make_pull(common::Round now, std::vector<OutboundMessage>& out,
                 std::optional<common::PeerId> target = std::nullopt);

  void note_activity(common::Round now) noexcept {
    last_activity_round_ = now;
  }
  [[nodiscard]] OutboundMessage wrap(common::PeerId to, GossipPayload payload);

  common::PeerId self_;
  GossipConfig config_;
  common::StreamRng rng_;
  ReplicaView view_;
  version::VersionedStore store_;
  version::LocalWriter writer_;
  ForwardDecider forward_;
  NodeStats stats_;

  /// Chooses push targets per the configured TargetSelection policy. The
  /// returned reference aliases `targets_scratch_` and is valid until the
  /// next select_targets call.
  [[nodiscard]] std::vector<common::PeerId>& select_targets(std::size_t count,
                                                            common::Round now);

  /// Versions already processed — the pseudocode's ProcessedUpdate set.
  std::unordered_map<version::VersionId, unsigned> seen_versions_;

  /// kFixedNeighbors: the static target set, drawn once lazily.
  std::vector<common::PeerId> fixed_neighbors_;

  /// §6 ack bookkeeping: push targets we await an ack from.
  struct PendingAck {
    common::Round pushed_at;
  };
  std::unordered_map<common::PeerId, PendingAck> pending_acks_;

  /// §4.4 client-side query state, keyed by nonce.
  struct PendingQuery {
    std::string key;
    QueryRule rule = QueryRule::kHybrid;
    std::size_t asked = 0;
    std::vector<QueryAnswer> answers;
    common::Round started = 0;
  };
  std::unordered_map<std::uint64_t, PendingQuery> pending_queries_;
  std::uint64_t next_query_nonce_ = 1;

  /// The wired arena, or a lazily created private one (standalone nodes).
  [[nodiscard]] WorkArena& arena() const {
    if (arena_ != nullptr) return *arena_;
    if (!owned_arena_) owned_arena_ = std::make_unique<WorkArena>();
    return *owned_arena_;
  }
  WorkArena* arena_ = nullptr;
  mutable std::unique_ptr<WorkArena> owned_arena_;

  common::Round last_activity_round_ = 0;
  common::Round last_pull_round_ = 0;
  bool needs_sync_ = false;     ///< reconnected and not yet reconciled
  bool lazy_waiting_ = false;   ///< §6 lazy pull armed

  static constexpr common::Round kAckWaitRounds = 2;
  static constexpr common::Round kQueryTimeoutRounds = 4;
};

}  // namespace updp2p::gossip
