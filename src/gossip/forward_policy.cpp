#include "gossip/forward_policy.hpp"

#include <algorithm>
#include <cmath>

namespace updp2p::gossip {

double ForwardDecider::probability(common::Round t,
                                   double list_fraction) const {
  double p = std::clamp(schedule_(t), 0.0, 1.0);
  if (self_tuning_) {
    // Duplicate pressure gates WHETHER to gossip at all: at a sustained
    // duplicate rate of 1 (every push a duplicate) the probability is
    // multiplied by `duplicate_damping_`; exponential in between. The
    // list-coverage signal tunes the fanout instead (effective_fanout) —
    // applying both signals to both knobs over-suppresses.
    p *= std::pow(duplicate_damping_, duplicate_rate_);
    p = std::max(p, min_probability_);
  }
  (void)list_fraction;
  return std::clamp(p, 0.0, 1.0);
}

std::size_t ForwardDecider::effective_fanout(std::size_t base,
                                             double list_fraction) const {
  if (!self_tuning_ || base <= 1) return base;
  // List coverage tunes HOW WIDE to gossip: a list covering fraction l of
  // the population leaves only (1−l) plausibly unreached, so pushing to
  // f_r·R·(1−l) fresh targets preserves coverage while cutting duplicates
  // (§6: the message length "provides an estimate of the extent of
  // propagation … to tune f_r and PF").
  const double multiplier = 1.0 - std::clamp(list_fraction, 0.0, 1.0);
  const auto fanout = static_cast<std::size_t>(
      static_cast<double>(base) * multiplier + 0.5);
  return std::max<std::size_t>(fanout, 1);
}

void ForwardDecider::observe_push(bool duplicate) noexcept {
  duplicate_rate_ = (1.0 - kEwmaAlpha) * duplicate_rate_ +
                    (duplicate ? kEwmaAlpha : 0.0);
}

}  // namespace updp2p::gossip
