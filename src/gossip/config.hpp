// Configuration of the hybrid push/pull gossip protocol.
//
// Every knob maps to a symbol in the paper's Table 1 / §6: fanout fraction
// f_r, forwarding probability PF(t), partial-list handling (l_max and the
// discard policy), ack-based suppression and pull behaviour.
#pragma once

#include <cstdint>

#include "analysis/forward_probability.hpp"
#include "common/ensure.hpp"
#include "common/types.hpp"

namespace updp2p::gossip {

/// How a peer bounds the partial flooding list R_f it forwards (§4.2: "This
/// can be achieved by discarding either random entries or the head or tail
/// of the partial list"; kNone disables the list entirely, the Gnutella-like
/// degenerate case).
enum class PartialListMode : std::uint8_t {
  kNone,        ///< no list propagated (maximal duplicates)
  kUnbounded,   ///< full list always forwarded
  kDropRandom,  ///< capped; discard random entries beyond the cap
  kDropHead,    ///< capped; keep the newest entries
  kDropTail,    ///< capped; keep the oldest entries
};

[[nodiscard]] const char* to_string(PartialListMode mode) noexcept;

struct PartialListConfig {
  PartialListMode mode = PartialListMode::kUnbounded;
  /// Maximum number of entries forwarded when capped (absolute count; the
  /// analysis' normalised l_max equals max_entries / R).
  std::size_t max_entries = 0;
};

/// §6 acknowledgement optimisation.
struct AckConfig {
  bool enabled = false;
  /// Reply to the first k distinct pushers of an update (paper: "only to
  /// the first or first k random replicas").
  unsigned ack_first_k = 1;
  /// Rounds a peer that never acked is presumed offline and skipped when
  /// selecting fanout targets. 0 disables suppression.
  common::Round suppression_rounds = 0;
  /// Sampling weight of peers that acked us (1 = no preference). Higher
  /// values concentrate pushes on provably-responsive peers — useful when
  /// a reliable backbone exists (paper §8).
  unsigned preferred_weight = 2;
};

/// Pull-phase behaviour (§3 pull pseudocode + §6 lazy variant).
struct PullConfig {
  /// Peers contacted per pull attempt ("it is preferable to contact
  /// multiple peers and choose the most up to date peer(s) among them").
  unsigned contacts_per_attempt = 3;
  /// A peer that saw no update for this many rounds becomes "not confident"
  /// and pulls (paper: no_updates_since(t)).
  common::Round no_update_timeout = 20;
  /// §6 lazy pull: on reconnect wait for the first push instead of pulling
  /// immediately; trades query latency for fewer pull messages.
  bool lazy = false;
};

/// How push targets are chosen. The paper argues fresh random choice per
/// push (§2: "better load balancing … improved robustness against changes
/// in the peer network"); kFixedNeighbors models topology-dependent schemes
/// like directional gossip [20], which §7.2 predicts "cannot be applied"
/// under churn because cached topology knowledge rots.
enum class TargetSelection : std::uint8_t {
  kRandomPerPush,
  kFixedNeighbors,
};

struct GossipConfig {
  /// f_r — fraction of the believed total replica population each push
  /// fans out to.
  double fanout_fraction = 0.01;
  TargetSelection target_selection = TargetSelection::kRandomPerPush;
  /// R — the replica population size this group was provisioned for. Peers
  /// use it to turn f_r into an absolute fanout; their *view* may know
  /// fewer peers, in which case they push to everyone they know.
  std::size_t estimated_total_replicas = 1'000;
  /// PF(t) schedule; replaced by the self-tuning controller when
  /// `self_tuning` is set.
  analysis::PfSchedule forward_probability = analysis::pf_constant(1.0);
  /// §6: modulate PF(t) by locally observed duplicates and list coverage.
  bool self_tuning = false;
  /// Multiplicative PF penalty per duplicate received for the same update.
  double duplicate_damping = 0.5;
  /// PF floor so self-tuning cannot silence a peer entirely.
  double min_forward_probability = 0.01;

  PartialListConfig partial_list;
  AckConfig acks;
  PullConfig pull;

  [[nodiscard]] std::size_t absolute_fanout() const {
    const double raw =
        fanout_fraction * static_cast<double>(estimated_total_replicas);
    const auto fanout = static_cast<std::size_t>(raw + 0.5);
    return fanout == 0 ? 1 : fanout;
  }

  void validate() const {
    UPDP2P_ENSURE(fanout_fraction > 0.0 && fanout_fraction <= 1.0,
                  "f_r must be in (0,1]");
    UPDP2P_ENSURE(estimated_total_replicas > 0, "population must be positive");
    UPDP2P_ENSURE(duplicate_damping > 0.0 && duplicate_damping <= 1.0,
                  "duplicate damping must be in (0,1]");
    UPDP2P_ENSURE(min_forward_probability >= 0.0 &&
                      min_forward_probability <= 1.0,
                  "PF floor must be in [0,1]");
    UPDP2P_ENSURE(pull.contacts_per_attempt > 0,
                  "pull must contact at least one peer");
  }
};

}  // namespace updp2p::gossip
