// Shared hot-path scratch for gossip nodes.
//
// PR 1 made the per-message path allocation-free by giving every node its
// own reusable scratch buffers — five vectors and several stamp sets per
// replica. At 10k replicas that private scratch dominates resident memory
// (a DensePeerSet stamp array alone is O(population) per node). Only one
// node per driver thread executes at a time, so the scratch can be shared:
// a WorkArena holds one set of buffers that every node wired to it reuses.
// Sequential drivers (EventSimulator, ReplicatedIndex) use one arena for
// the whole population; the sharded RoundSimulator uses one arena per
// shard, which keeps the sharing single-threaded by construction.
//
// Every buffer is cleared (or assigned) by its user before use, never read
// across calls, so handing the same arena to many nodes is safe as long as
// no two of them run concurrently.
#pragma once

#include <vector>

#include "common/chunked_peer_set.hpp"
#include "common/dense_peer_set.hpp"
#include "common/types.hpp"
#include "gossip/codec.hpp"

namespace updp2p::gossip {

struct WorkArena {
  // ReplicaNode scratch.
  std::vector<common::PeerId> targets;   ///< select_targets output
  std::vector<common::PeerId> contacts;  ///< make_pull contacts
  common::ChunkedPeerSet list;           ///< outgoing forward list build
  common::ChunkedPeerSet recv_list;      ///< streaming push-frame decode

  // Wire-path scratch: one encode per fan-out (the interned-frame cache
  // serves the other N-1 targets), one reference alive at a time.
  FrameCache frames;

  // ReplicaView::sample_into scratch.
  std::vector<common::PeerId> pool;      ///< weighted candidate pool
  common::DensePeerSet chosen;           ///< distinct-pick dedup
  common::DensePeerSet exclude;          ///< sample() wrapper only
};

}  // namespace updp2p::gossip
