// Protocol messages of the hybrid push/pull scheme.
//
// Push(U, V, R_f, t) carries the updated item with its version, the partial
// flooding list R_f and the push-round counter t (paper §3 pseudocode).
// Pull is a summary exchange: the puller sends its version-vector summary,
// the pulled party answers with every version the summary does not cover
// (§3: "Inquire for missed updates based on version vectors").
#pragma once

#include <algorithm>
#include <cstdint>
#include <initializer_list>
#include <memory>
#include <span>
#include <variant>
#include <vector>

#include "common/chunked_peer_set.hpp"
#include "common/types.hpp"
#include "gossip/config.hpp"
#include "version/store.hpp"
#include "version/version_vector.hpp"

namespace updp2p::gossip {

/// Flooding list R_f shared across one forward's fan-out.
///
/// A forward sends the *same* list to ~f_r·R targets; carrying it by value
/// made every extra message an O(|R_f|) copy plus an allocation — the
/// dominant allocator traffic of a large push phase. The entries are
/// immutable once the message is built, so the copies can share one
/// object: copying a SharedPeerList is a reference-count bump. Mutating
/// accessors (used while *building* a list, e.g. codec decode and tests)
/// copy on write, preserving value semantics.
///
/// The underlying representation is a compressed common::ChunkedPeerSet:
/// a *set* ordered by peer id, not an insertion-ordered sequence. That
/// matches the protocol — R_f membership is what matters (§4.2 drops
/// duplicates and probes "am I on the list?") — and it is what shrinks
/// both resident memory and bytes on the wire at scale.
class SharedPeerList {
 public:
  SharedPeerList() = default;
  SharedPeerList(const common::ChunkedPeerSet& set)  // NOLINT(google-explicit-constructor)
      : data_(set.empty()
                  ? nullptr
                  : std::make_shared<const common::ChunkedPeerSet>(set)) {}
  SharedPeerList(common::ChunkedPeerSet&& set)  // NOLINT(google-explicit-constructor)
      : data_(set.empty() ? nullptr
                          : std::make_shared<const common::ChunkedPeerSet>(
                                std::move(set))) {}
  SharedPeerList(std::initializer_list<common::PeerId> entries)
      : SharedPeerList(common::ChunkedPeerSet(entries)) {}

  [[nodiscard]] std::size_t size() const noexcept {
    return data_ ? data_->size() : 0;
  }
  [[nodiscard]] bool empty() const noexcept { return size() == 0; }
  [[nodiscard]] bool contains(common::PeerId peer) const noexcept {
    return data_ && data_->contains(peer);
  }
  /// The underlying set (an empty set when default-constructed).
  [[nodiscard]] const common::ChunkedPeerSet& set() const noexcept {
    return data_ ? *data_ : empty_set();
  }
  /// Visits entries in ascending peer-id order.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    if (data_) data_->for_each(std::forward<Fn>(fn));
  }

  /// Stable identity of the shared representation (nullptr when default-
  /// constructed). Equal identities imply equal contents — the encode
  /// cache (gossip::FrameCache) uses this to recognise one fan-out's
  /// shared list across its N messages without comparing sets.
  [[nodiscard]] const void* identity() const noexcept { return data_.get(); }

  /// Copy-on-write insert (list construction in decode paths and tests).
  void insert(common::PeerId peer) {
    auto next = data_ ? std::make_shared<common::ChunkedPeerSet>(*data_)
                      : std::make_shared<common::ChunkedPeerSet>();
    next->insert(peer);
    data_ = std::move(next);
  }

  friend bool operator==(const SharedPeerList& a, const SharedPeerList& b) {
    return a.data_ == b.data_ || a.set() == b.set();
  }

 private:
  [[nodiscard]] static const common::ChunkedPeerSet& empty_set() noexcept;

  std::shared_ptr<const common::ChunkedPeerSet> data_;
};

/// The versioned value (U, V) shared across one forward's fan-out.
///
/// Same motivation as SharedPeerList: every fan-out target receives the
/// identical value, and a VersionedValue copy is expensive (payload string
/// plus a std::map-backed version vector). The value is immutable once a
/// push is built, so the copies can share one object; copying a
/// SharedValue is a reference-count bump. Value semantics are preserved:
/// comparison is deep, and a default-constructed SharedValue reads as an
/// empty VersionedValue.
class SharedValue {
 public:
  SharedValue() = default;
  SharedValue(version::VersionedValue value)  // NOLINT(google-explicit-constructor)
      : data_(std::make_shared<const version::VersionedValue>(
            std::move(value))) {}

  [[nodiscard]] const version::VersionedValue& get() const noexcept {
    return data_ ? *data_ : empty_value();
  }
  [[nodiscard]] const version::VersionedValue& operator*() const noexcept {
    return get();
  }
  [[nodiscard]] const version::VersionedValue* operator->() const noexcept {
    return &get();
  }

  /// Stable identity of the shared representation (nullptr when default-
  /// constructed); equal identities imply equal contents. See
  /// SharedPeerList::identity().
  [[nodiscard]] const void* identity() const noexcept { return data_.get(); }

  friend bool operator==(const SharedValue& a, const SharedValue& b) {
    return a.data_ == b.data_ || a.get() == b.get();
  }

 private:
  [[nodiscard]] static const version::VersionedValue& empty_value() noexcept;

  std::shared_ptr<const version::VersionedValue> data_;
};

struct PushMessage {
  SharedValue value;             ///< (U, V) (shared across the fan-out)
  SharedPeerList flooding_list;  ///< R_f (shared across the fan-out)
  common::Round round = 0;       ///< t
};

struct PullRequest {
  version::VersionVector summary;  ///< everything the puller has seen
  /// Ids of the versions the puller currently stores. Required for precise
  /// reconciliation: summary coverage alone misses concurrent siblings the
  /// puller never stored (see VersionedStore::missing_for).
  std::vector<version::VersionId> have;
  /// Order-insensitive digest of `have`; matching digests short-circuit
  /// the exchange (the common already-in-sync case).
  common::Digest128 store_digest{};
};

struct PullResponse {
  std::vector<version::VersionedValue> missing;  ///< delta for the puller
  version::VersionVector summary;                ///< responder's own summary
  bool confident = true;  ///< responder believes it is in sync (§3)
};

struct AckMessage {
  version::VersionId acked;  ///< version whose push is acknowledged (§6)
};

/// §4.4 query servicing: ask a replica for its versions of one key.
struct QueryRequest {
  std::string key;
  std::uint64_t nonce = 0;  ///< correlates replies with the issuing query
};

struct QueryReply {
  std::string key;
  std::uint64_t nonce = 0;
  /// The responder's causally-maximal versions (empty: key unknown).
  std::vector<version::VersionedValue> versions;
  bool confident = true;  ///< responder believes it is in sync (§3)
};

using GossipPayload = std::variant<PushMessage, PullRequest, PullResponse,
                                   AckMessage, QueryRequest, QueryReply>;

/// Variant indices (stable; used by simulators to classify traffic).
inline constexpr std::size_t kPushIndex = 0;
inline constexpr std::size_t kPullRequestIndex = 1;
inline constexpr std::size_t kPullResponseIndex = 2;
inline constexpr std::size_t kAckIndex = 3;
inline constexpr std::size_t kQueryRequestIndex = 4;
inline constexpr std::size_t kQueryReplyIndex = 5;

/// A message the protocol wants transmitted; the hosting simulator (or a
/// real transport) decides how. `size_bytes` is the EXACT codec frame size
/// (gossip::encoded_size == encode().size()), so byte metrics are
/// wire-accurate whether or not the driver actually serialises.
struct OutboundMessage {
  common::PeerId to;
  GossipPayload payload;
  std::uint64_t size_bytes = 0;
};

/// Human-readable payload kind (diagnostics and tests).
[[nodiscard]] const char* payload_kind(const GossipPayload& payload) noexcept;

}  // namespace updp2p::gossip
