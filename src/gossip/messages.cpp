#include "gossip/messages.hpp"

namespace updp2p::gossip {

const version::VersionedValue& SharedValue::empty_value() noexcept {
  static const version::VersionedValue kEmpty{};
  return kEmpty;
}

const common::ChunkedPeerSet& SharedPeerList::empty_set() noexcept {
  static const common::ChunkedPeerSet kEmpty{};
  return kEmpty;
}

namespace {
std::uint64_t value_bytes(const version::VersionedValue& value,
                          const WireSizeConfig& wire) {
  // Payload + key + one version-vector entry per counter + the version id.
  return wire.update_payload_bytes + value.key.size() +
         value.history.entry_count() * wire.replica_entry_bytes + 16;
}
}  // namespace

std::uint64_t wire_size(const GossipPayload& payload,
                        const WireSizeConfig& wire) {
  return wire.header_bytes +
         std::visit(
             [&wire](const auto& message) -> std::uint64_t {
               using T = std::decay_t<decltype(message)>;
               if constexpr (std::is_same_v<T, PushMessage>) {
                 // The flooding list is accounted at its exact compressed
                 // wire size (the chunked delta-varint encoding), not the
                 // flat replica_entry_bytes model: bytes-on-wire savings
                 // from the compressed form must show up in the bandwidth
                 // metrics (§5 message-length analysis).
                 return value_bytes(*message.value, wire) +
                        message.flooding_list.set().wire_encoded_bytes() +
                        sizeof(common::Round);
               } else if constexpr (std::is_same_v<T, PullRequest>) {
                 return message.summary.entry_count() *
                            wire.replica_entry_bytes +
                        message.have.size() * 16 + 16 /* store digest */;
               } else if constexpr (std::is_same_v<T, PullResponse>) {
                 std::uint64_t total = message.summary.entry_count() *
                                       wire.replica_entry_bytes;
                 for (const auto& value : message.missing) {
                   total += value_bytes(value, wire);
                 }
                 return total;
               } else if constexpr (std::is_same_v<T, AckMessage>) {
                 return 16;  // just the version id
               } else if constexpr (std::is_same_v<T, QueryRequest>) {
                 return message.key.size() + 8;
               } else {
                 static_assert(std::is_same_v<T, QueryReply>);
                 std::uint64_t total = message.key.size() + 8 + 1;
                 for (const auto& value : message.versions) {
                   total += value_bytes(value, wire);
                 }
                 return total;
               }
             },
             payload);
}

const char* payload_kind(const GossipPayload& payload) noexcept {
  switch (payload.index()) {
    case kPushIndex: return "push";
    case kPullRequestIndex: return "pull-request";
    case kPullResponseIndex: return "pull-response";
    case kAckIndex: return "ack";
    case kQueryRequestIndex: return "query-request";
    case kQueryReplyIndex: return "query-reply";
    default: return "?";
  }
}

}  // namespace updp2p::gossip
