#include "gossip/messages.hpp"

namespace updp2p::gossip {

const version::VersionedValue& SharedValue::empty_value() noexcept {
  static const version::VersionedValue kEmpty{};
  return kEmpty;
}

const common::ChunkedPeerSet& SharedPeerList::empty_set() noexcept {
  static const common::ChunkedPeerSet kEmpty{};
  return kEmpty;
}

const char* payload_kind(const GossipPayload& payload) noexcept {
  switch (payload.index()) {
    case kPushIndex: return "push";
    case kPullRequestIndex: return "pull-request";
    case kPullResponseIndex: return "pull-response";
    case kAckIndex: return "ack";
    case kQueryRequestIndex: return "query-request";
    case kQueryReplyIndex: return "query-reply";
    default: return "?";
  }
}

}  // namespace updp2p::gossip
