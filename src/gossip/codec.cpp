#include "gossip/codec.hpp"

#include <bit>
#include <cstring>
#include <limits>

namespace updp2p::gossip {

namespace {

constexpr std::byte kMagic0{0xD5};
constexpr std::byte kMagic1{0x2B};

using Kind = WireKind;

/// Encoded length of put_varint(value).
constexpr std::size_t varint_len(std::uint64_t value) noexcept {
  std::size_t length = 1;
  while (value >= 0x80) {
    value >>= 7;
    ++length;
  }
  return length;
}

void put_u8(WireBytes& out, std::uint8_t value) {
  out.push_back(static_cast<std::byte>(value));
}

std::optional<std::uint8_t> get_u8(std::span<const std::byte> bytes,
                                   std::size_t& offset) {
  if (offset >= bytes.size()) return std::nullopt;
  return static_cast<std::uint8_t>(bytes[offset++]);
}

void put_u64(WireBytes& out, std::uint64_t value) {
  for (int shift = 0; shift < 64; shift += 8) {
    out.push_back(static_cast<std::byte>((value >> shift) & 0xFF));
  }
}

std::optional<std::uint64_t> get_u64(std::span<const std::byte> bytes,
                                     std::size_t& offset) {
  if (offset + 8 > bytes.size()) return std::nullopt;
  std::uint64_t value = 0;
  for (int shift = 0; shift < 64; shift += 8) {
    value |= static_cast<std::uint64_t>(bytes[offset++]) << shift;
  }
  return value;
}

void put_f64(WireBytes& out, double value) {
  put_u64(out, std::bit_cast<std::uint64_t>(value));
}

std::optional<double> get_f64(std::span<const std::byte> bytes,
                              std::size_t& offset) {
  const auto raw = get_u64(bytes, offset);
  if (!raw) return std::nullopt;
  return std::bit_cast<double>(*raw);
}

void put_string(WireBytes& out, std::string_view text) {
  put_varint(out, text.size());
  const auto* data = reinterpret_cast<const std::byte*>(text.data());
  out.insert(out.end(), data, data + text.size());
}

std::optional<std::string> get_string(std::span<const std::byte> bytes,
                                      std::size_t& offset) {
  const auto length = get_varint(bytes, offset);
  if (!length || offset + *length > bytes.size()) return std::nullopt;
  std::string text(reinterpret_cast<const char*>(bytes.data() + offset),
                   *length);
  offset += *length;
  return text;
}

void put_digest(WireBytes& out, const common::Digest128& digest) {
  put_u64(out, digest.hi);
  put_u64(out, digest.lo);
}

std::optional<common::Digest128> get_digest(std::span<const std::byte> bytes,
                                            std::size_t& offset) {
  const auto hi = get_u64(bytes, offset);
  const auto lo = get_u64(bytes, offset);
  if (!hi || !lo) return std::nullopt;
  return common::Digest128{*hi, *lo};
}

void put_version_vector(WireBytes& out, const version::VersionVector& vv) {
  put_varint(out, vv.entry_count());
  for (const auto& [peer, counter] : vv.entries()) {
    put_varint(out, peer.value());
    put_varint(out, counter);
  }
}

std::optional<version::VersionVector> get_version_vector(
    std::span<const std::byte> bytes, std::size_t& offset) {
  const auto count = get_varint(bytes, offset);
  if (!count) return std::nullopt;
  // Each entry needs at least two bytes; reject absurd counts early so a
  // hostile length prefix cannot make us loop for long.
  if (*count > bytes.size()) return std::nullopt;
  version::VersionVector vv;
  for (std::uint64_t i = 0; i < *count; ++i) {
    const auto peer = get_varint(bytes, offset);
    const auto counter = get_varint(bytes, offset);
    if (!peer || !counter || *peer >= kMaxWirePeerId) return std::nullopt;
    vv.observe(common::PeerId(static_cast<std::uint32_t>(*peer)), *counter);
  }
  return vv;
}

void put_value(WireBytes& out, const version::VersionedValue& value) {
  put_string(out, value.key);
  put_string(out, value.payload);
  put_digest(out, value.id.digest());
  put_version_vector(out, value.history);
  put_u8(out, value.tombstone ? 1 : 0);
  put_f64(out, value.written_at);
}

std::optional<version::VersionedValue> get_value(
    std::span<const std::byte> bytes, std::size_t& offset) {
  version::VersionedValue value;
  auto key = get_string(bytes, offset);
  auto payload = get_string(bytes, offset);
  auto digest = get_digest(bytes, offset);
  auto history = get_version_vector(bytes, offset);
  auto flags = get_u8(bytes, offset);
  auto written_at = get_f64(bytes, offset);
  if (!key || !payload || !digest || !history || !flags || !written_at) {
    return std::nullopt;
  }
  value.key = std::move(*key);
  value.payload = std::move(*payload);
  value.id = version::VersionId(*digest);
  value.history = std::move(*history);
  value.tombstone = (*flags & 1) != 0;
  value.written_at = *written_at;
  return value;
}

using common::ChunkedPeerSet;

void put_peer_set(WireBytes& out, const ChunkedPeerSet& set) {
  put_varint(out, set.chunks().size());
  for (const ChunkedPeerSet::Chunk& chunk : set.chunks()) {
    put_varint(out, chunk.key);
    put_u8(out, chunk.is_bitmap() ? 1 : 0);
    put_varint(out, chunk.cardinality);
    if (chunk.is_bitmap()) {
      for (const std::uint64_t word : chunk.bits) put_u64(out, word);
    } else {
      // First low verbatim, then gap-1 deltas (lows strictly increase, so
      // every gap is >= 1 and the common consecutive-id case costs one
      // zero byte per entry).
      std::uint16_t prev = 0;
      bool first = true;
      for (const std::uint16_t low : chunk.lows) {
        put_varint(out, first ? low
                              : static_cast<std::uint64_t>(low - prev - 1));
        prev = low;
        first = false;
      }
    }
  }
}

/// Streaming peerset decode into a caller-owned set. `set` is cleared
/// first — a warm arena set's parked chunk buffers are reused by the
/// append_*_chunk builders, so decoding into the same set every delivery
/// allocates nothing once the buffers are warm. On failure the set is left
/// cleared so no partial chunks leak to the caller.
bool get_peer_set_into(std::span<const std::byte> bytes, std::size_t& offset,
                       ChunkedPeerSet& set) {
  set.clear();
  const auto chunk_count = get_varint(bytes, offset);
  // Strictly increasing keys below kMaxWireChunkKey bound the chunk count
  // too; rejecting early keeps a hostile prefix from looping for long.
  if (!chunk_count || *chunk_count > kMaxWireChunkKey) return false;
  std::vector<std::uint16_t> lows;
  std::vector<std::uint64_t> words;
  for (std::uint64_t c = 0; c < *chunk_count; ++c) {
    const auto fail = [&set] {
      set.clear();  // no partial chunks leak to the caller
      return false;
    };
    const auto key = get_varint(bytes, offset);
    // Per-chunk id bound: key < kMaxWirePeerId >> 16 means no id this
    // chunk can express (key<<16 | low16) reaches kMaxWirePeerId. Keys
    // must strictly increase, which also rules out overlapping ranges;
    // append_*_chunk below re-checks that ordering.
    if (!key || *key >= kMaxWireChunkKey) return fail();
    const auto form = get_u8(bytes, offset);
    const auto cardinality = get_varint(bytes, offset);
    if (!form || *form > 1 || !cardinality || *cardinality == 0 ||
        *cardinality > ChunkedPeerSet::kChunkSpan) {
      return fail();
    }
    if (*form == 0) {
      // Canonical form caps an array chunk at kArrayChunkMax entries, and
      // each entry costs at least one encoded byte — a declared
      // cardinality beyond the remaining payload is hostile.
      if (*cardinality > ChunkedPeerSet::kArrayChunkMax ||
          *cardinality > bytes.size() - offset) {
        return fail();
      }
      lows.clear();
      lows.reserve(*cardinality);
      std::uint64_t value = 0;
      for (std::uint64_t i = 0; i < *cardinality; ++i) {
        const auto delta = get_varint(bytes, offset);
        if (!delta) return fail();
        value = i == 0 ? *delta : value + *delta + 1;
        if (value >= ChunkedPeerSet::kChunkSpan) return fail();
        lows.push_back(static_cast<std::uint16_t>(value));
      }
      if (!set.append_array_chunk(static_cast<std::uint16_t>(*key), lows)) {
        return fail();
      }
    } else {
      words.clear();
      words.reserve(ChunkedPeerSet::kBitmapWords);
      for (std::size_t w = 0; w < ChunkedPeerSet::kBitmapWords; ++w) {
        const auto word = get_u64(bytes, offset);
        if (!word) return fail();
        words.push_back(*word);
      }
      // append_bitmap_chunk enforces canonical density (> kArrayChunkMax
      // bits); the declared cardinality must match the actual popcount or
      // the header is lying.
      const std::size_t before = set.size();
      if (!set.append_bitmap_chunk(static_cast<std::uint16_t>(*key), words) ||
          set.size() - before != *cardinality) {
        return fail();
      }
    }
  }
  return true;
}

// --- size mirrors of the put_* helpers (encoded_size) -----------------------

std::size_t string_size(std::string_view text) noexcept {
  return varint_len(text.size()) + text.size();
}

std::size_t version_vector_size(const version::VersionVector& vv) noexcept {
  std::size_t total = varint_len(vv.entry_count());
  for (const auto& [peer, counter] : vv.entries()) {
    total += varint_len(peer.value()) + varint_len(counter);
  }
  return total;
}

std::size_t value_size(const version::VersionedValue& value) noexcept {
  return string_size(value.key) + string_size(value.payload) +
         16 /*digest*/ + version_vector_size(value.history) +
         1 /*flags*/ + 8 /*written_at*/;
}

/// Advances `offset` past one length-prefixed string without materialising
/// it (probe path). False on truncation.
bool skip_string(std::span<const std::byte> bytes, std::size_t& offset) {
  const auto length = get_varint(bytes, offset);
  if (!length || offset + *length > bytes.size()) return false;
  offset += *length;
  return true;
}

/// Parses the fixed frame header; returns the kind byte or nullopt.
std::optional<Kind> get_frame_header(std::span<const std::byte> bytes,
                                     std::size_t& offset) {
  if (bytes.size() < 4 || bytes[0] != kMagic0 || bytes[1] != kMagic1) {
    return std::nullopt;
  }
  offset = 2;
  const auto version = get_u8(bytes, offset);
  if (!version || *version != kCodecVersion) return std::nullopt;
  const auto kind = get_u8(bytes, offset);
  if (!kind || *kind < 1 ||
      *kind > static_cast<std::uint8_t>(Kind::kQueryReply)) {
    return std::nullopt;
  }
  return static_cast<Kind>(*kind);
}

}  // namespace

void encode_peer_set(WireBytes& out, const common::ChunkedPeerSet& set) {
  put_peer_set(out, set);
}

bool decode_peer_set(std::span<const std::byte> bytes, std::size_t& offset,
                     common::ChunkedPeerSet& set) {
  return get_peer_set_into(bytes, offset, set);
}

void encode_value(WireBytes& out, const version::VersionedValue& value) {
  put_value(out, value);
}

std::optional<version::VersionedValue> decode_value(
    std::span<const std::byte> bytes, std::size_t& offset) {
  return get_value(bytes, offset);
}

void put_varint(WireBytes& out, std::uint64_t value) {
  while (value >= 0x80) {
    out.push_back(static_cast<std::byte>((value & 0x7F) | 0x80));
    value >>= 7;
  }
  out.push_back(static_cast<std::byte>(value));
}

std::optional<std::uint64_t> get_varint(std::span<const std::byte> bytes,
                                        std::size_t& offset) {
  std::uint64_t value = 0;
  for (int shift = 0; shift < 70; shift += 7) {
    if (offset >= bytes.size() || shift > 63) return std::nullopt;
    const auto byte = static_cast<std::uint8_t>(bytes[offset++]);
    value |= static_cast<std::uint64_t>(byte & 0x7F) << shift;
    if ((byte & 0x80) == 0) return value;
  }
  return std::nullopt;
}

void encode_into(const GossipPayload& payload, WireBytes& out) {
  out.clear();
  if (out.capacity() < 64) out.reserve(64);
  out.push_back(kMagic0);
  out.push_back(kMagic1);
  put_u8(out, kCodecVersion);
  std::visit(
      [&out](const auto& message) {
        using T = std::decay_t<decltype(message)>;
        if constexpr (std::is_same_v<T, PushMessage>) {
          put_u8(out, static_cast<std::uint8_t>(Kind::kPush));
          put_value(out, *message.value);
          put_varint(out, message.round);
          put_peer_set(out, message.flooding_list.set());
        } else if constexpr (std::is_same_v<T, PullRequest>) {
          put_u8(out, static_cast<std::uint8_t>(Kind::kPullRequest));
          put_version_vector(out, message.summary);
          put_varint(out, message.have.size());
          for (const auto& id : message.have) put_digest(out, id.digest());
          put_digest(out, message.store_digest);
        } else if constexpr (std::is_same_v<T, PullResponse>) {
          put_u8(out, static_cast<std::uint8_t>(Kind::kPullResponse));
          put_version_vector(out, message.summary);
          put_u8(out, message.confident ? 1 : 0);
          put_varint(out, message.missing.size());
          for (const auto& value : message.missing) put_value(out, value);
        } else if constexpr (std::is_same_v<T, AckMessage>) {
          put_u8(out, static_cast<std::uint8_t>(Kind::kAck));
          put_digest(out, message.acked.digest());
        } else if constexpr (std::is_same_v<T, QueryRequest>) {
          put_u8(out, static_cast<std::uint8_t>(Kind::kQueryRequest));
          put_string(out, message.key);
          put_varint(out, message.nonce);
        } else {
          static_assert(std::is_same_v<T, QueryReply>);
          put_u8(out, static_cast<std::uint8_t>(Kind::kQueryReply));
          put_string(out, message.key);
          put_varint(out, message.nonce);
          put_u8(out, message.confident ? 1 : 0);
          put_varint(out, message.versions.size());
          for (const auto& value : message.versions) put_value(out, value);
        }
      },
      payload);
}

WireBytes encode(const GossipPayload& payload) {
  WireBytes out;
  encode_into(payload, out);
  return out;
}

std::size_t encoded_size(const GossipPayload& payload) {
  return 4 /*magic + version + kind*/ +
         std::visit(
             [](const auto& message) -> std::size_t {
               using T = std::decay_t<decltype(message)>;
               if constexpr (std::is_same_v<T, PushMessage>) {
                 return value_size(*message.value) +
                        varint_len(message.round) +
                        message.flooding_list.set().wire_encoded_bytes();
               } else if constexpr (std::is_same_v<T, PullRequest>) {
                 return version_vector_size(message.summary) +
                        varint_len(message.have.size()) +
                        message.have.size() * 16 + 16 /*store digest*/;
               } else if constexpr (std::is_same_v<T, PullResponse>) {
                 std::size_t total = version_vector_size(message.summary) +
                                     1 /*confident*/ +
                                     varint_len(message.missing.size());
                 for (const auto& value : message.missing) {
                   total += value_size(value);
                 }
                 return total;
               } else if constexpr (std::is_same_v<T, AckMessage>) {
                 return 16;  // just the version id
               } else if constexpr (std::is_same_v<T, QueryRequest>) {
                 return string_size(message.key) + varint_len(message.nonce);
               } else {
                 static_assert(std::is_same_v<T, QueryReply>);
                 std::size_t total = string_size(message.key) +
                                     varint_len(message.nonce) +
                                     1 /*confident*/ +
                                     varint_len(message.versions.size());
                 for (const auto& value : message.versions) {
                   total += value_size(value);
                 }
                 return total;
               }
             },
             payload);
}

std::optional<FrameProbe> probe_frame(std::span<const std::byte> bytes) {
  std::size_t offset = 0;
  const auto kind = get_frame_header(bytes, offset);
  if (!kind) return std::nullopt;
  FrameProbe probe;
  probe.kind = *kind;
  switch (*kind) {
    case Kind::kPush: {
      // value := key || payload || digest128 || ... — the digest is the
      // version id; two string skips reach it without touching the version
      // vector or the flooding list.
      if (!skip_string(bytes, offset) || !skip_string(bytes, offset)) {
        return std::nullopt;
      }
      const auto digest = get_digest(bytes, offset);
      if (!digest) return std::nullopt;
      probe.version = version::VersionId(*digest);
      return probe;
    }
    case Kind::kAck: {
      const auto digest = get_digest(bytes, offset);
      if (!digest) return std::nullopt;
      probe.version = version::VersionId(*digest);
      return probe;
    }
    case Kind::kQueryRequest:
    case Kind::kQueryReply: {
      if (!skip_string(bytes, offset)) return std::nullopt;
      const auto nonce = get_varint(bytes, offset);
      if (!nonce) return std::nullopt;
      probe.nonce = *nonce;
      return probe;
    }
    case Kind::kPullRequest:
    case Kind::kPullResponse:
      return probe;  // nothing cheap to identify beyond the kind
  }
  return std::nullopt;
}

std::optional<DecodedPush> decode_push_into(std::span<const std::byte> bytes,
                                            common::ChunkedPeerSet& list) {
  std::size_t offset = 0;
  const auto kind = get_frame_header(bytes, offset);
  if (!kind || *kind != Kind::kPush) {
    list.clear();
    return std::nullopt;
  }
  auto value = get_value(bytes, offset);
  auto round = get_varint(bytes, offset);
  if (!value || !round ||
      *round > std::numeric_limits<common::Round>::max() ||
      !get_peer_set_into(bytes, offset, list)) {
    list.clear();
    return std::nullopt;
  }
  return DecodedPush{std::move(*value), static_cast<common::Round>(*round)};
}

SharedFrame FrameCache::intern(const GossipPayload& payload) {
  if (const auto* push = std::get_if<PushMessage>(&payload)) {
    // Identity equality, not value equality: a fan-out's messages share
    // the SharedValue/SharedPeerList objects, so pointer matches identify
    // "the same push, next target" with zero comparisons of content.
    // Distinct objects with equal contents encode to identical bytes
    // anyway, so a conservative miss only costs a redundant encode.
    if (frame_ && push->value.identity() == value_.identity() &&
        push->flooding_list.identity() == list_.identity() &&
        push->round == round_) {
      ++hits_;
      return frame_;
    }
    ++encodes_;
    frame_ = SharedFrame(encode(payload));
    value_ = push->value;
    list_ = push->flooding_list;
    round_ = push->round;
    return frame_;
  }
  ++encodes_;
  return SharedFrame(encode(payload));
}

std::optional<GossipPayload> decode(std::span<const std::byte> bytes) {
  std::size_t offset = 0;
  const auto kind = get_frame_header(bytes, offset);
  if (!kind) return std::nullopt;

  switch (*kind) {
    case Kind::kPush: {
      auto value = get_value(bytes, offset);
      auto round = get_varint(bytes, offset);
      common::ChunkedPeerSet list;
      if (!value || !round ||
          *round > std::numeric_limits<common::Round>::max() ||
          !get_peer_set_into(bytes, offset, list)) {
        return std::nullopt;
      }
      return GossipPayload{PushMessage{SharedValue(std::move(*value)),
                                       SharedPeerList(std::move(list)),
                                       static_cast<common::Round>(*round)}};
    }
    case Kind::kPullRequest: {
      auto summary = get_version_vector(bytes, offset);
      auto have_count = get_varint(bytes, offset);
      if (!summary || !have_count || *have_count > bytes.size()) {
        return std::nullopt;
      }
      PullRequest request;
      request.summary = std::move(*summary);
      request.have.reserve(*have_count);
      for (std::uint64_t i = 0; i < *have_count; ++i) {
        auto digest = get_digest(bytes, offset);
        if (!digest) return std::nullopt;
        request.have.emplace_back(*digest);
      }
      auto store_digest = get_digest(bytes, offset);
      if (!store_digest) return std::nullopt;
      request.store_digest = *store_digest;
      return GossipPayload{std::move(request)};
    }
    case Kind::kPullResponse: {
      auto summary = get_version_vector(bytes, offset);
      auto confident = get_u8(bytes, offset);
      auto count = get_varint(bytes, offset);
      if (!summary || !confident || !count || *count > bytes.size()) {
        return std::nullopt;
      }
      PullResponse response;
      response.summary = std::move(*summary);
      response.confident = (*confident & 1) != 0;
      response.missing.reserve(*count);
      for (std::uint64_t i = 0; i < *count; ++i) {
        auto value = get_value(bytes, offset);
        if (!value) return std::nullopt;
        response.missing.push_back(std::move(*value));
      }
      return GossipPayload{std::move(response)};
    }
    case Kind::kAck: {
      auto digest = get_digest(bytes, offset);
      if (!digest) return std::nullopt;
      return GossipPayload{AckMessage{version::VersionId(*digest)}};
    }
    case Kind::kQueryRequest: {
      auto key = get_string(bytes, offset);
      auto nonce = get_varint(bytes, offset);
      if (!key || !nonce) return std::nullopt;
      return GossipPayload{QueryRequest{std::move(*key), *nonce}};
    }
    case Kind::kQueryReply: {
      auto key = get_string(bytes, offset);
      auto nonce = get_varint(bytes, offset);
      auto confident = get_u8(bytes, offset);
      auto count = get_varint(bytes, offset);
      if (!key || !nonce || !confident || !count || *count > bytes.size()) {
        return std::nullopt;
      }
      QueryReply reply;
      reply.key = std::move(*key);
      reply.nonce = *nonce;
      reply.confident = (*confident & 1) != 0;
      reply.versions.reserve(*count);
      for (std::uint64_t i = 0; i < *count; ++i) {
        auto value = get_value(bytes, offset);
        if (!value) return std::nullopt;
        reply.versions.push_back(std::move(*value));
      }
      return GossipPayload{std::move(reply)};
    }
  }
  return std::nullopt;
}

}  // namespace updp2p::gossip
