#include "gossip/replica_view.hpp"

#include <algorithm>

namespace updp2p::gossip {

bool ReplicaView::add(common::PeerId peer) {
  if (peer == self_ || !index_.insert(peer)) return false;
  members_.push_back(peer);
  return true;
}

std::size_t ReplicaView::merge(std::span<const common::PeerId> peers) {
  // Received peer lists probe the stamp array in random order, and the
  // array is usually cold (deliveries alternate between nodes); prefetching
  // a fixed distance ahead overlaps those cache misses.
  constexpr std::size_t kPrefetchAhead = 16;
  std::size_t added = 0;
  for (std::size_t i = 0; i < peers.size(); ++i) {
    if (i + kPrefetchAhead < peers.size()) {
      index_.prefetch(peers[i + kPrefetchAhead]);
    }
    if (add(peers[i])) ++added;
  }
  return added;
}

bool ReplicaView::is_presumed_offline(common::PeerId peer,
                                      common::Round now) const {
  // Pure read — no purge. A mark still in the map is answered exactly by
  // the expiry comparison, so a rewound `now` (tests, default-argument
  // callers) gets the same answer the pre-purge implementation gave.
  // Purging is driven by presumed_offline_count and sample_into, whose
  // O(1)-count/empty fast paths need the map trimmed; a mark such a purge
  // at round t dropped had `until <= t` and reads as online afterwards,
  // matching presumed_offline_count's fallback scan, which cannot see
  // purged marks either.
  const auto it = presumed_offline_until_.find(peer);
  return it != presumed_offline_until_.end() && now < it->second;
}

std::size_t ReplicaView::presumed_offline_count(common::Round now) const {
  purge_presumed_offline(now);
  if (offline_purged_at_ >= now) return presumed_offline_until_.size();
  // `now` ran backwards (possible in tests); fall back to a scan.
  std::size_t count = 0;
  for (const auto& [peer, until] : presumed_offline_until_) {
    if (now < until) ++count;
  }
  return count;
}

void ReplicaView::purge_presumed_offline(common::Round now) const {
  if (now <= offline_purged_at_ || presumed_offline_until_.empty()) return;
  offline_purged_at_ = now;
  std::erase_if(presumed_offline_until_,
                [now](const auto& entry) { return entry.second <= now; });
}

void ReplicaView::mark_preferred(common::PeerId peer) {
  if (peer != self_) preferred_.insert(peer);
}

void ReplicaView::mark_presumed_offline(common::PeerId peer,
                                        common::Round until_round) {
  auto& slot = presumed_offline_until_[peer];
  slot = std::max(slot, until_round);
}

void ReplicaView::clear_presumed_offline(common::PeerId peer) {
  presumed_offline_until_.erase(peer);
}

void ReplicaView::sample_into(common::Rng& rng, std::size_t count,
                              std::vector<common::PeerId>& out,
                              const common::DensePeerSet* exclude,
                              common::Round now) const {
  out.clear();
  if (count == 0 || members_.empty()) return;

  purge_presumed_offline(now);
  const bool check_offline = !presumed_offline_until_.empty();
  const bool check_exclude = exclude != nullptr && !exclude->empty();
  const bool weighted = preferred_weight_ > 1 && !preferred_.empty();

  // Candidate pool: view minus exclusions minus presumed-offline peers.
  // Preferred pushers (§6 acks) appear `preferred_weight_` times in the
  // pool, raising their selection odds without breaking distinctness.
  std::vector<common::PeerId>& pool = pool_scratch_;
  if (!check_exclude && !check_offline && !weighted) {
    // Common case (no filters): the pool is the membership verbatim, so a
    // bulk copy replaces the per-element branching loop.
    pool.assign(members_.begin(), members_.end());
  } else {
    pool.clear();
    for (const common::PeerId peer : members_) {
      if (check_exclude && exclude->contains(peer)) continue;
      if (check_offline && is_presumed_offline(peer, now)) continue;
      pool.push_back(peer);
      if (weighted && preferred_.contains(peer)) {
        for (unsigned w = 1; w < preferred_weight_; ++w) pool.push_back(peer);
      }
    }
  }
  if (pool.empty()) return;

  out.reserve(std::min(count, pool.size()));
  common::DensePeerSet& chosen = chosen_scratch_;
  chosen.reserve_ids(index_.capacity());
  chosen.clear();
  // Partial Fisher–Yates over the weighted pool, de-duplicating picks.
  std::size_t remaining = pool.size();
  while (chosen.size() < count && remaining > 0) {
    const std::size_t pick = rng.pick_index(remaining);
    const common::PeerId peer = pool[pick];
    std::swap(pool[pick], pool[remaining - 1]);
    --remaining;
    if (chosen.insert(peer)) out.push_back(peer);
  }
}

std::vector<common::PeerId> ReplicaView::sample(
    common::Rng& rng, std::size_t count,
    const std::unordered_set<common::PeerId>& exclude,
    common::Round now) const {
  std::vector<common::PeerId> out;
  if (exclude.empty()) {
    sample_into(rng, count, out, nullptr, now);
    return out;
  }
  exclude_scratch_.clear();
  for (const common::PeerId peer : exclude) exclude_scratch_.insert(peer);
  sample_into(rng, count, out, &exclude_scratch_, now);
  return out;
}

}  // namespace updp2p::gossip
