#include "gossip/replica_view.hpp"

#include <algorithm>

namespace updp2p::gossip {

bool ReplicaView::add(common::PeerId peer) {
  // Track the id bound for every peer *offered*, not just those stored:
  // callers size DensePeerSet scratch off id_capacity() to cover flooding
  // lists, and a list may legitimately contain this view's owner.
  if (peer.is_valid()) {
    if (peer.value() + 1 > id_bound_) {
      id_bound_ = peer.value() + 1;
    } else if (peer != self_ && saturated()) {
      // Pigeonhole: the view holds every valid non-self id below
      // id_bound_, and this peer is below the bound — it is provably a
      // member already. Skipping the probe keeps flooding-list merges
      // into bootstrap-full views from touching the index at all.
      return false;
    }
  }
  if (peer == self_) return false;
  return known_.insert(peer);
}

std::size_t ReplicaView::merge(std::span<const common::PeerId> peers) {
  // Saturated views absorb most peer lists without touching the index at
  // all: when every offered id is below id_bound_, the pigeonhole argument
  // in add() covers the whole list, so the merge is a pure no-op
  // (membership and id_bound_ both unchanged). One branch-free max-scan
  // over the list replaces per-peer add() calls. Invalid ids read as
  // 0xFFFFFFFF and a valid id bound never exceeds them, so they fall
  // through to the slow path unchanged.
  if (saturated()) {
    std::uint32_t max_id = 0;
    for (const common::PeerId peer : peers) {
      max_id = std::max(max_id, peer.value());
    }
    if (max_id < id_bound_) return 0;
  }
  std::size_t added = 0;
  for (const common::PeerId peer : peers) {
    if (add(peer)) ++added;
  }
  return added;
}

std::size_t ReplicaView::merge(const common::ChunkedPeerSet& peers) {
  if (peers.empty()) return 0;
  // Saturated fast path: every id in `peers` below the bound is provably
  // known (counting argument), so a bounded max_id means a no-op merge —
  // one O(1) check instead of touching any chunk.
  const std::uint32_t peers_max = peers.max_id();
  if (saturated() && peers_max < id_bound_) return 0;
  if (static_cast<std::size_t>(peers_max) + 1 > id_bound_) {
    id_bound_ = static_cast<std::size_t>(peers_max) + 1;
  }
  // One insertion per new id, nothing else: self_ is pre-inserted so it is
  // never "new", and with a no-op novelty callback the absorb's per-id
  // reporting loops compile away — bitmap chunks merge as pure OR/popcount
  // sweeps. The count is the set's size delta.
  const std::size_t before = known_.size();
  known_.absorb(peers, [](common::PeerId) {});
  return known_.size() - before;
}

bool ReplicaView::is_presumed_offline(common::PeerId peer,
                                      common::Round now) const {
  // Pure read — no purge. A mark still in the map is answered exactly by
  // the expiry comparison, so a rewound `now` (tests, default-argument
  // callers) gets the same answer the pre-purge implementation gave.
  // Purging is driven by presumed_offline_count and sample_into, whose
  // O(1)-count/empty fast paths need the map trimmed; a mark such a purge
  // at round t dropped had `until <= t` and reads as online afterwards,
  // matching presumed_offline_count's fallback scan, which cannot see
  // purged marks either.
  const auto it = presumed_offline_until_.find(peer);
  return it != presumed_offline_until_.end() && now < it->second;
}

std::size_t ReplicaView::presumed_offline_count(common::Round now) const {
  purge_presumed_offline(now);
  if (offline_purged_at_ >= now) return presumed_offline_until_.size();
  // `now` ran backwards (possible in tests); fall back to a scan.
  std::size_t count = 0;
  // lint-allow(iteration-order): count accumulation is order-insensitive
  for (const auto& [peer, until] : presumed_offline_until_) {
    if (now < until) ++count;
  }
  return count;
}

void ReplicaView::purge_presumed_offline(common::Round now) const {
  if (now <= offline_purged_at_ || presumed_offline_until_.empty()) return;
  offline_purged_at_ = now;
  std::erase_if(presumed_offline_until_,
                [now](const auto& entry) { return entry.second <= now; });
}

void ReplicaView::mark_preferred(common::PeerId peer) {
  if (peer != self_) preferred_.insert(peer);
}

void ReplicaView::mark_presumed_offline(common::PeerId peer,
                                        common::Round until_round) {
  auto& slot = presumed_offline_until_[peer];
  slot = std::max(slot, until_round);
}

void ReplicaView::clear_presumed_offline(common::PeerId peer) {
  presumed_offline_until_.erase(peer);
}

template <typename RngT>
void ReplicaView::sample_into(RngT& rng, std::size_t count,
                              std::vector<common::PeerId>& out,
                              const common::DensePeerSet* exclude,
                              common::Round now) const {
  out.clear();
  const std::size_t member_count = size();
  if (count == 0 || member_count == 0) return;

  purge_presumed_offline(now);
  const bool check_offline = !presumed_offline_until_.empty();
  const bool check_exclude = exclude != nullptr && !exclude->empty();
  const bool weighted = preferred_weight_ > 1 && !preferred_.empty();

  common::DensePeerSet& chosen = arena().chosen;
  chosen.reserve_ids(id_bound_);
  chosen.clear();
  out.reserve(std::min(count, member_count));

  if (!weighted) {
    // Unweighted fast path: rejection-sample straight off the compressed
    // index — no O(|view|) pool copy per call. Dense views (members fill
    // most of the id space, so chunks are bitmaps and rank selection
    // would popcount-scan) draw a uniform ID and reject non-members: an
    // O(1) membership probe per trial with acceptance >= 1/4. Sparse
    // views draw a uniform RANK and select it (array chunks answer by
    // index). Either way every rejected pick — non-member, duplicate,
    // excluded, presumed-offline — leaves the remaining draw uniform
    // over the eligible members. The attempt budget bounds the rare
    // pathological case; exhausting it falls through to the exact pool
    // walk below, which finishes the sample without replacement.
    const bool dense = member_count * 4 >= id_bound_;
    const std::size_t self_rank = dense ? 0 : known_.rank_of(self_);
    std::size_t attempts = dense ? 8 * count + 32 : 4 * count + 16;
    while (out.size() < count && attempts-- > 0) {
      common::PeerId peer = common::PeerId::invalid();
      if (dense) {
        peer = common::PeerId(
            static_cast<std::uint32_t>(rng.pick_index(id_bound_)));
        if (peer == self_ || !known_.contains(peer)) continue;
      } else {
        peer = member_at(rng.pick_index(member_count), self_rank);
      }
      if (check_exclude && exclude->contains(peer)) continue;
      if (check_offline && is_presumed_offline(peer, now)) continue;
      if (chosen.insert(peer)) out.push_back(peer);
    }
    if (out.size() >= count || out.size() == member_count) return;
  }

  // Candidate pool: the membership materialised once (ascending), plus
  // `preferred_weight_ - 1` extra copies of each eligible §6-preferred
  // member so acked peers are proportionally more likely to be picked.
  // Excluded and presumed-offline peers stay IN the base pool and are
  // rejected at pick time instead: an exclusion list is ~fanout long
  // while the view holds thousands of peers, so rejecting the handful of
  // picks that land on them is far cheaper than an O(|view|) filtering
  // pass per call — and a rejected pick leaves the remaining sample
  // exactly uniform over the eligible pool.
  std::vector<common::PeerId>& pool = arena().pool;
  pool.clear();
  pool.reserve(member_count);
  known_.for_each([this, &pool](common::PeerId peer) {
    if (peer != self_) pool.push_back(peer);
  });
  if (weighted) {
    preferred_.for_each([&](common::PeerId peer) {
      if (!contains(peer)) return;  // preferred but not in the view
      if (check_exclude && exclude->contains(peer)) return;
      if (check_offline && is_presumed_offline(peer, now)) return;
      for (unsigned w = 1; w < preferred_weight_; ++w) pool.push_back(peer);
    });
  }

  // Partial Fisher–Yates with pick-time rejection, de-duplicating picks
  // (including any made by the fast path above).
  std::size_t remaining = pool.size();
  while (out.size() < count && remaining > 0) {
    const std::size_t pick = rng.pick_index(remaining);
    const common::PeerId peer = pool[pick];
    pool[pick] = pool[remaining - 1];
    --remaining;
    if (check_exclude && exclude->contains(peer)) continue;
    if (check_offline && is_presumed_offline(peer, now)) continue;
    if (chosen.insert(peer)) out.push_back(peer);
  }
}

template <typename RngT>
std::vector<common::PeerId> ReplicaView::sample(
    RngT& rng, std::size_t count,
    const std::unordered_set<common::PeerId>& exclude,
    common::Round now) const {
  std::vector<common::PeerId> out;
  if (exclude.empty()) {
    sample_into(rng, count, out, nullptr, now);
    return out;
  }
  common::DensePeerSet& scratch = arena().exclude;
  scratch.clear();
  // lint-allow(iteration-order): set-to-set copy, membership is order-free
  for (const common::PeerId peer : exclude) scratch.insert(peer);
  sample_into(rng, count, out, &scratch, now);
  return out;
}

template void ReplicaView::sample_into(common::Rng&, std::size_t,
                                       std::vector<common::PeerId>&,
                                       const common::DensePeerSet*,
                                       common::Round) const;
template void ReplicaView::sample_into(common::StreamRng&, std::size_t,
                                       std::vector<common::PeerId>&,
                                       const common::DensePeerSet*,
                                       common::Round) const;
template std::vector<common::PeerId> ReplicaView::sample(
    common::Rng&, std::size_t, const std::unordered_set<common::PeerId>&,
    common::Round) const;
template std::vector<common::PeerId> ReplicaView::sample(
    common::StreamRng&, std::size_t,
    const std::unordered_set<common::PeerId>&, common::Round) const;

}  // namespace updp2p::gossip
