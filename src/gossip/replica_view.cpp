#include "gossip/replica_view.hpp"

#include <algorithm>

namespace updp2p::gossip {

bool ReplicaView::add(common::PeerId peer) {
  if (peer == self_ || index_.contains(peer)) return false;
  index_.insert(peer);
  members_.push_back(peer);
  return true;
}

std::size_t ReplicaView::merge(std::span<const common::PeerId> peers) {
  std::size_t added = 0;
  for (const common::PeerId peer : peers) {
    if (add(peer)) ++added;
  }
  return added;
}

bool ReplicaView::is_presumed_offline(common::PeerId peer,
                                      common::Round now) const {
  const auto it = presumed_offline_until_.find(peer);
  return it != presumed_offline_until_.end() && now < it->second;
}

std::size_t ReplicaView::presumed_offline_count(common::Round now) const {
  std::size_t count = 0;
  for (const auto& [peer, until] : presumed_offline_until_) {
    if (now < until) ++count;
  }
  return count;
}

void ReplicaView::mark_preferred(common::PeerId peer) {
  if (peer != self_) preferred_.insert(peer);
}

void ReplicaView::mark_presumed_offline(common::PeerId peer,
                                        common::Round until_round) {
  auto& slot = presumed_offline_until_[peer];
  slot = std::max(slot, until_round);
}

void ReplicaView::clear_presumed_offline(common::PeerId peer) {
  presumed_offline_until_.erase(peer);
}

std::vector<common::PeerId> ReplicaView::sample(
    common::Rng& rng, std::size_t count,
    const std::unordered_set<common::PeerId>& exclude,
    common::Round now) const {
  std::vector<common::PeerId> out;
  if (count == 0 || members_.empty()) return out;

  // Candidate pool: view minus exclusions minus presumed-offline peers.
  // Preferred pushers (§6 acks) appear `preferred_weight_` times in the
  // pool, raising their selection odds without breaking distinctness.
  std::vector<common::PeerId> pool;
  pool.reserve(members_.size() + preferred_.size() * preferred_weight_);
  for (const common::PeerId peer : members_) {
    if (exclude.contains(peer) || is_presumed_offline(peer, now)) continue;
    pool.push_back(peer);
    if (preferred_weight_ > 1 && preferred_.contains(peer)) {
      for (unsigned w = 1; w < preferred_weight_; ++w) pool.push_back(peer);
    }
  }
  if (pool.empty()) return out;

  out.reserve(std::min(count, pool.size()));
  std::unordered_set<common::PeerId> chosen;
  chosen.reserve(count * 2);
  // Partial Fisher–Yates over the weighted pool, de-duplicating picks.
  std::size_t remaining = pool.size();
  while (chosen.size() < count && remaining > 0) {
    const std::size_t pick = rng.pick_index(remaining);
    const common::PeerId peer = pool[pick];
    std::swap(pool[pick], pool[remaining - 1]);
    --remaining;
    if (chosen.insert(peer).second) out.push_back(peer);
  }
  return out;
}

}  // namespace updp2p::gossip
