#include "gossip/query.hpp"

#include <algorithm>
#include <map>
#include <vector>

namespace updp2p::gossip {

const char* to_string(QueryRule rule) noexcept {
  switch (rule) {
    case QueryRule::kLatestVersion: return "latest-version";
    case QueryRule::kMajority: return "majority";
    case QueryRule::kHybrid: return "hybrid";
  }
  return "?";
}

namespace {

/// True when `a` is a strictly better "latest" candidate than `b`:
/// causally dominating, else more total events, else larger id (the same
/// global tiebreak as VersionedStore::read, so query and local reads agree).
bool fresher(const version::VersionedValue& a, const version::VersionedValue& b) {
  switch (a.history.compare(b.history)) {
    case version::Causality::kDominates: return true;
    case version::Causality::kDominatedBy: return false;
    case version::Causality::kEqual:
    case version::Causality::kConcurrent:
      break;
  }
  if (a.history.total_events() != b.history.total_events()) {
    return a.history.total_events() > b.history.total_events();
  }
  return a.id > b.id;
}

std::optional<version::VersionedValue> resolve(
    const std::vector<const version::VersionedValue*>& values, QueryRule rule) {
  if (values.empty()) return std::nullopt;

  switch (rule) {
    case QueryRule::kLatestVersion: {
      const version::VersionedValue* best = values.front();
      for (const auto* v : values) {
        if (fresher(*v, *best)) best = v;
      }
      return *best;
    }
    case QueryRule::kMajority: {
      std::map<version::VersionId, std::size_t> votes;
      for (const auto* v : values) ++votes[v->id];
      const version::VersionedValue* best = nullptr;
      std::size_t best_votes = 0;
      for (const auto* v : values) {
        const std::size_t n = votes[v->id];
        if (n > best_votes || (n == best_votes && best && fresher(*v, *best))) {
          best = v;
          best_votes = n;
        }
      }
      return *best;
    }
    case QueryRule::kHybrid: {
      // Keep only causally maximal versions, then majority among them:
      // dominated (stale) replicas cannot outvote a fresh minority.
      std::vector<const version::VersionedValue*> maximal;
      for (const auto* candidate : values) {
        const bool dominated = std::any_of(
            values.begin(), values.end(), [candidate](const auto* other) {
              return other->history.compare(candidate->history) ==
                     version::Causality::kDominates;
            });
        if (!dominated) maximal.push_back(candidate);
      }
      return resolve(maximal, QueryRule::kMajority);
    }
  }
  return std::nullopt;
}

}  // namespace

std::optional<version::VersionedValue> local_winner(
    std::span<const version::VersionedValue> versions) {
  if (versions.empty()) return std::nullopt;
  const version::VersionedValue* best = &versions.front();
  for (const auto& v : versions) {
    if (fresher(v, *best)) best = &v;
  }
  if (best->tombstone) return std::nullopt;
  return *best;
}

std::optional<version::VersionedValue> resolve_query(
    std::span<const QueryAnswer> answers, QueryRule rule) {
  std::vector<const version::VersionedValue*> confident_values;
  std::vector<const version::VersionedValue*> all_values;
  for (const QueryAnswer& answer : answers) {
    if (!answer.value.has_value()) continue;
    all_values.push_back(&*answer.value);
    if (answer.confident) confident_values.push_back(&*answer.value);
  }
  // Prefer confident replicas (§3: the pulled party itself may be out of
  // sync); fall back to whatever is available.
  auto result = resolve(confident_values, rule);
  return result.has_value() ? result : resolve(all_values, rule);
}

}  // namespace updp2p::gossip
