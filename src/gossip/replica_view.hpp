// A peer's partial view of its replica group.
//
// Paper §2: "each replica knows a minimal fraction of the complete set of
// replicas … additionally replicas get known through the update mechanism"
// — the partial flooding list doubles as membership dissemination (the
// name-dropper effect, §7.2/[14]). The view also tracks the §6 ack state:
// preferred pushers (peers that acked us) and presumed-offline peers
// (pushed, never acked) that are temporarily skipped.
//
// Membership is held ONLY in a compressed ChunkedPeerSet (2 bytes per
// member in sparse chunks, 1 bit in dense ones — no parallel member
// vector), and a received flooding list — itself a ChunkedPeerSet —
// merges by word-parallel set difference: one AND-NOT pass discovers the
// new ids and the union absorbs them, instead of a hash probe per entry.
// Uniform sampling rank-selects straight off the compressed form
// (select_rank: array chunks answer by index, bitmap chunks by popcount
// scan), so membership costs no duplicate storage and a merge performs
// exactly one insertion per new id. Per-view state is O(|view|), not
// O(population) — the property that lets 100k+ populations fit in memory.
// Sampling uses arena scratch: after warm-up a call to sample_into
// performs no heap allocation. The scratch state makes a view
// non-reentrant but each node owns its view exclusively (and
// arena-sharing nodes never run concurrently).
#pragma once

#include <memory>
#include <optional>
#include <span>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/chunked_peer_set.hpp"
#include "common/dense_peer_set.hpp"
#include "common/rng.hpp"
#include "common/small_peer_set.hpp"
#include "common/types.hpp"
#include "gossip/arena.hpp"

namespace updp2p::gossip {

class ReplicaView {
 public:
  explicit ReplicaView(common::PeerId self) : self_(self) {
    // The index holds the owner too: flooding lists legitimately name it,
    // and keeping it in the set lets merges run pure set algebra with no
    // per-element self test. contains() re-excludes it below.
    if (self_.is_valid()) known_.insert(self_);
  }

  /// Shares the given scratch arena instead of a privately owned one.
  /// Pass nullptr to fall back to private scratch (standalone nodes).
  void use_arena(WorkArena* arena) noexcept { arena_ = arena; }

  /// Adds a peer; returns true if it was previously unknown. The owner
  /// itself is never a member.
  bool add(common::PeerId peer);

  /// Merges a received peer list; returns how many peers were new
  /// (membership knowledge gained through gossip).
  std::size_t merge(std::span<const common::PeerId> peers);

  /// Merges a received flooding list in compressed form: one pass of
  /// word-parallel set difference (AND-NOT over bitmap chunks) discovers
  /// the new ids while the union absorbs them. Returns how many were new.
  std::size_t merge(const common::ChunkedPeerSet& peers);

  [[nodiscard]] bool contains(common::PeerId peer) const {
    return peer != self_ && known_.contains(peer);
  }
  /// Member count (the owner is excluded, though the index holds it).
  [[nodiscard]] std::size_t size() const noexcept {
    return known_.size() - (self_.is_valid() ? 1 : 0);
  }
  [[nodiscard]] bool empty() const noexcept { return size() == 0; }
  [[nodiscard]] common::PeerId self() const noexcept { return self_; }
  /// Upper bound (exclusive) on peer ids this view has observed (including
  /// ids offered to add()); useful for pre-sizing caller-owned DensePeerSet
  /// scratch in one step instead of letting it grow geometrically.
  [[nodiscard]] std::size_t id_capacity() const noexcept { return id_bound_; }

  /// The compressed membership index, read-only. Note the representation
  /// invariant: the owner id is IN the set (merges run pure set algebra);
  /// consumers that want members only must skip self(). The durable store
  /// snapshots this set verbatim — re-merging it on recovery is idempotent
  /// and self-tolerant, so the self entry round-trips harmlessly.
  [[nodiscard]] const common::ChunkedPeerSet& membership() const noexcept {
    return known_;
  }

  /// Samples up to `count` distinct peers into `out` (replacing its
  /// contents), excluding peers in `exclude` (when non-null) and peers
  /// currently presumed offline (§6 suppression). Preferred pushers are
  /// `preferred_weight()` times as likely to be picked first. Produces
  /// fewer than `count` when the view is small. Allocation-free once the
  /// arena's scratch buffers are warm.
  template <typename RngT>
  void sample_into(RngT& rng, std::size_t count,
                   std::vector<common::PeerId>& out,
                   const common::DensePeerSet* exclude = nullptr,
                   common::Round now = 0) const;

  /// Allocating convenience wrapper around sample_into.
  template <typename RngT>
  [[nodiscard]] std::vector<common::PeerId> sample(
      RngT& rng, std::size_t count,
      const std::unordered_set<common::PeerId>& exclude = {},
      common::Round now = 0) const;

  /// How strongly §6-preferred peers are oversampled (1 = no preference).
  void set_preferred_weight(unsigned weight) noexcept {
    preferred_weight_ = weight == 0 ? 1 : weight;
  }
  [[nodiscard]] unsigned preferred_weight() const noexcept {
    return preferred_weight_;
  }

  /// §6: the ack told us `peer` is a responsive target.
  void mark_preferred(common::PeerId peer);
  /// §6: no ack came back — presume `peer` offline until round
  /// `until_round` and skip it when sampling.
  void mark_presumed_offline(common::PeerId peer, common::Round until_round);
  /// Clears the presumed-offline mark (e.g. the peer contacted us).
  void clear_presumed_offline(common::PeerId peer);

  [[nodiscard]] bool is_preferred(common::PeerId peer) const {
    return preferred_.contains(peer);
  }
  /// Whether `peer` is marked presumed-offline at round `now`. Exact for
  /// any mark still recorded, at any `now` (including rewound queries);
  /// marks dropped by an earlier lazy purge — they had expired at or
  /// before that purge's round — read as online.
  [[nodiscard]] bool is_presumed_offline(common::PeerId peer,
                                         common::Round now) const;
  /// Live count of presumed-offline peers at `now`. O(1) after the lazy
  /// purge for this round has run (expired marks are dropped on access).
  [[nodiscard]] std::size_t presumed_offline_count(common::Round now) const;

 private:
  /// Lazily drops marks that expired at or before `now`; after the purge
  /// every remaining entry satisfies `now < until`, so the map size IS the
  /// live count. Rounds advance monotonically in every driver, so a purge
  /// at round t never erases a mark still live at a later query.
  void purge_presumed_offline(common::Round now) const;

  /// Whether the view holds EVERY valid non-self id below id_bound_.
  /// Members are distinct valid ids below the bound excluding self, so
  /// this is a pure counting argument — and while it holds, membership of
  /// any in-bound id is decidable without touching the index.
  [[nodiscard]] bool saturated() const noexcept {
    return size() +
               (self_.is_valid() && self_.value() < id_bound_ ? 1u : 0u) ==
           id_bound_;
  }

  /// Member with the given ascending rank among the non-self members.
  /// `self_rank` is known_.rank_of(self_), hoisted by the caller so a
  /// sampling loop pays the rank lookup once.
  [[nodiscard]] common::PeerId member_at(std::size_t rank,
                                         std::size_t self_rank) const {
    return known_.select_rank(rank + (rank >= self_rank ? 1 : 0));
  }

  /// The wired arena, or a lazily created private one.
  [[nodiscard]] WorkArena& arena() const {
    if (arena_ != nullptr) return *arena_;
    if (!owned_arena_) owned_arena_ = std::make_unique<WorkArena>();
    return *owned_arena_;
  }

  common::PeerId self_;
  unsigned preferred_weight_ = 2;
  std::size_t id_bound_ = 0;
  common::ChunkedPeerSet known_;  ///< members ∪ {self_}, compressed
  common::SmallPeerSet preferred_;
  mutable std::unordered_map<common::PeerId, common::Round>
      presumed_offline_until_;
  mutable common::Round offline_purged_at_ = 0;

  WorkArena* arena_ = nullptr;
  mutable std::unique_ptr<WorkArena> owned_arena_;
};

}  // namespace updp2p::gossip
