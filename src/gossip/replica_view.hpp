// A peer's partial view of its replica group.
//
// Paper §2: "each replica knows a minimal fraction of the complete set of
// replicas … additionally replicas get known through the update mechanism"
// — the partial flooding list doubles as membership dissemination (the
// name-dropper effect, §7.2/[14]). The view also tracks the §6 ack state:
// preferred pushers (peers that acked us) and presumed-offline peers
// (pushed, never acked) that are temporarily skipped.
//
// Sampling is the protocol's innermost loop, so it runs over dense
// epoch-stamped sets and per-view scratch buffers: after warm-up a call to
// sample_into performs no heap allocation and no hashing. The scratch state
// makes a view non-reentrant but each node owns its view exclusively.
#pragma once

#include <optional>
#include <span>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/dense_peer_set.hpp"
#include "common/rng.hpp"
#include "common/types.hpp"

namespace updp2p::gossip {

class ReplicaView {
 public:
  explicit ReplicaView(common::PeerId self) : self_(self) {}

  /// Adds a peer; returns true if it was previously unknown. The owner
  /// itself is never stored.
  bool add(common::PeerId peer);

  /// Merges a received partial list; returns how many peers were new
  /// (membership knowledge gained through gossip).
  std::size_t merge(std::span<const common::PeerId> peers);

  [[nodiscard]] bool contains(common::PeerId peer) const {
    return index_.contains(peer);
  }
  [[nodiscard]] std::size_t size() const noexcept { return members_.size(); }
  [[nodiscard]] bool empty() const noexcept { return members_.empty(); }
  [[nodiscard]] const std::vector<common::PeerId>& members() const noexcept {
    return members_;
  }
  [[nodiscard]] common::PeerId self() const noexcept { return self_; }
  /// Upper bound (exclusive) on member ids the view has seen; useful for
  /// pre-sizing caller-owned DensePeerSet scratch in one step instead of
  /// letting it grow geometrically.
  [[nodiscard]] std::size_t id_capacity() const noexcept {
    return index_.capacity();
  }

  /// Samples up to `count` distinct peers into `out` (replacing its
  /// contents), excluding peers in `exclude` (when non-null) and peers
  /// currently presumed offline (§6 suppression). Preferred pushers are
  /// `preferred_weight()` times as likely to be picked first. Produces
  /// fewer than `count` when the view is small. Allocation-free once the
  /// view's scratch buffers are warm.
  void sample_into(common::Rng& rng, std::size_t count,
                   std::vector<common::PeerId>& out,
                   const common::DensePeerSet* exclude = nullptr,
                   common::Round now = 0) const;

  /// Allocating convenience wrapper around sample_into.
  [[nodiscard]] std::vector<common::PeerId> sample(
      common::Rng& rng, std::size_t count,
      const std::unordered_set<common::PeerId>& exclude = {},
      common::Round now = 0) const;

  /// How strongly §6-preferred peers are oversampled (1 = no preference).
  void set_preferred_weight(unsigned weight) noexcept {
    preferred_weight_ = weight == 0 ? 1 : weight;
  }
  [[nodiscard]] unsigned preferred_weight() const noexcept {
    return preferred_weight_;
  }

  /// §6: the ack told us `peer` is a responsive target.
  void mark_preferred(common::PeerId peer);
  /// §6: no ack came back — presume `peer` offline until round
  /// `until_round` and skip it when sampling.
  void mark_presumed_offline(common::PeerId peer, common::Round until_round);
  /// Clears the presumed-offline mark (e.g. the peer contacted us).
  void clear_presumed_offline(common::PeerId peer);

  [[nodiscard]] bool is_preferred(common::PeerId peer) const {
    return preferred_.contains(peer);
  }
  /// Whether `peer` is marked presumed-offline at round `now`. Exact for
  /// any mark still recorded, at any `now` (including rewound queries);
  /// marks dropped by an earlier lazy purge — they had expired at or
  /// before that purge's round — read as online.
  [[nodiscard]] bool is_presumed_offline(common::PeerId peer,
                                         common::Round now) const;
  /// Live count of presumed-offline peers at `now`. O(1) after the lazy
  /// purge for this round has run (expired marks are dropped on access).
  [[nodiscard]] std::size_t presumed_offline_count(common::Round now) const;

 private:
  /// Lazily drops marks that expired at or before `now`; after the purge
  /// every remaining entry satisfies `now < until`, so the map size IS the
  /// live count. Rounds advance monotonically in every driver, so a purge
  /// at round t never erases a mark still live at a later query.
  void purge_presumed_offline(common::Round now) const;

  common::PeerId self_;
  unsigned preferred_weight_ = 2;
  std::vector<common::PeerId> members_;
  common::DensePeerSet index_;
  common::DensePeerSet preferred_;
  mutable std::unordered_map<common::PeerId, common::Round>
      presumed_offline_until_;
  mutable common::Round offline_purged_at_ = 0;

  // sample_into scratch (reused across calls; cleared in O(1) per call).
  mutable std::vector<common::PeerId> pool_scratch_;
  mutable common::DensePeerSet chosen_scratch_;
  mutable common::DensePeerSet exclude_scratch_;  // sample() wrapper only
};

}  // namespace updp2p::gossip
