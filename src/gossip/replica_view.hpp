// A peer's partial view of its replica group.
//
// Paper §2: "each replica knows a minimal fraction of the complete set of
// replicas … additionally replicas get known through the update mechanism"
// — the partial flooding list doubles as membership dissemination (the
// name-dropper effect, §7.2/[14]). The view also tracks the §6 ack state:
// preferred pushers (peers that acked us) and presumed-offline peers
// (pushed, never acked) that are temporarily skipped.
//
// Sampling is the protocol's innermost loop, so it runs over a compact
// open-addressing index plus arena scratch buffers: after warm-up a call
// to sample_into performs no heap allocation. Per-view state is O(|view|),
// not O(population) — the property that lets 100k+ populations fit in
// memory. The scratch state makes a view non-reentrant but each node owns
// its view exclusively (and arena-sharing nodes never run concurrently).
#pragma once

#include <memory>
#include <optional>
#include <span>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/dense_peer_set.hpp"
#include "common/rng.hpp"
#include "common/small_peer_set.hpp"
#include "common/types.hpp"
#include "gossip/arena.hpp"

namespace updp2p::gossip {

class ReplicaView {
 public:
  explicit ReplicaView(common::PeerId self) : self_(self) {}

  /// Shares the given scratch arena instead of a privately owned one.
  /// Pass nullptr to fall back to private scratch (standalone nodes).
  void use_arena(WorkArena* arena) noexcept { arena_ = arena; }

  /// Adds a peer; returns true if it was previously unknown. The owner
  /// itself is never stored.
  bool add(common::PeerId peer);

  /// Merges a received partial list; returns how many peers were new
  /// (membership knowledge gained through gossip).
  std::size_t merge(std::span<const common::PeerId> peers);

  [[nodiscard]] bool contains(common::PeerId peer) const {
    return index_.contains(peer);
  }
  [[nodiscard]] std::size_t size() const noexcept { return members_.size(); }
  [[nodiscard]] bool empty() const noexcept { return members_.empty(); }
  [[nodiscard]] const std::vector<common::PeerId>& members() const noexcept {
    return members_;
  }
  [[nodiscard]] common::PeerId self() const noexcept { return self_; }
  /// Upper bound (exclusive) on peer ids this view has observed (including
  /// ids offered to add()); useful for pre-sizing caller-owned DensePeerSet
  /// scratch in one step instead of letting it grow geometrically.
  [[nodiscard]] std::size_t id_capacity() const noexcept { return id_bound_; }

  /// Samples up to `count` distinct peers into `out` (replacing its
  /// contents), excluding peers in `exclude` (when non-null) and peers
  /// currently presumed offline (§6 suppression). Preferred pushers are
  /// `preferred_weight()` times as likely to be picked first. Produces
  /// fewer than `count` when the view is small. Allocation-free once the
  /// arena's scratch buffers are warm.
  template <typename RngT>
  void sample_into(RngT& rng, std::size_t count,
                   std::vector<common::PeerId>& out,
                   const common::DensePeerSet* exclude = nullptr,
                   common::Round now = 0) const;

  /// Allocating convenience wrapper around sample_into.
  template <typename RngT>
  [[nodiscard]] std::vector<common::PeerId> sample(
      RngT& rng, std::size_t count,
      const std::unordered_set<common::PeerId>& exclude = {},
      common::Round now = 0) const;

  /// How strongly §6-preferred peers are oversampled (1 = no preference).
  void set_preferred_weight(unsigned weight) noexcept {
    preferred_weight_ = weight == 0 ? 1 : weight;
  }
  [[nodiscard]] unsigned preferred_weight() const noexcept {
    return preferred_weight_;
  }

  /// §6: the ack told us `peer` is a responsive target.
  void mark_preferred(common::PeerId peer);
  /// §6: no ack came back — presume `peer` offline until round
  /// `until_round` and skip it when sampling.
  void mark_presumed_offline(common::PeerId peer, common::Round until_round);
  /// Clears the presumed-offline mark (e.g. the peer contacted us).
  void clear_presumed_offline(common::PeerId peer);

  [[nodiscard]] bool is_preferred(common::PeerId peer) const {
    return preferred_.contains(peer);
  }
  /// Whether `peer` is marked presumed-offline at round `now`. Exact for
  /// any mark still recorded, at any `now` (including rewound queries);
  /// marks dropped by an earlier lazy purge — they had expired at or
  /// before that purge's round — read as online.
  [[nodiscard]] bool is_presumed_offline(common::PeerId peer,
                                         common::Round now) const;
  /// Live count of presumed-offline peers at `now`. O(1) after the lazy
  /// purge for this round has run (expired marks are dropped on access).
  [[nodiscard]] std::size_t presumed_offline_count(common::Round now) const;

 private:
  /// Lazily drops marks that expired at or before `now`; after the purge
  /// every remaining entry satisfies `now < until`, so the map size IS the
  /// live count. Rounds advance monotonically in every driver, so a purge
  /// at round t never erases a mark still live at a later query.
  void purge_presumed_offline(common::Round now) const;

  /// Whether the view holds EVERY valid non-self id below id_bound_.
  /// Members are distinct valid ids below the bound excluding self, so
  /// this is a pure counting argument — and while it holds, membership of
  /// any in-bound id is decidable without touching the hash index.
  [[nodiscard]] bool saturated() const noexcept {
    return members_.size() +
               (self_.is_valid() && self_.value() < id_bound_ ? 1u : 0u) ==
           id_bound_;
  }

  /// The wired arena, or a lazily created private one.
  [[nodiscard]] WorkArena& arena() const {
    if (arena_ != nullptr) return *arena_;
    if (!owned_arena_) owned_arena_ = std::make_unique<WorkArena>();
    return *owned_arena_;
  }

  common::PeerId self_;
  unsigned preferred_weight_ = 2;
  std::size_t id_bound_ = 0;
  std::vector<common::PeerId> members_;
  common::SmallPeerSet index_;
  common::SmallPeerSet preferred_;
  mutable std::unordered_map<common::PeerId, common::Round>
      presumed_offline_until_;
  mutable common::Round offline_purged_at_ = 0;

  WorkArena* arena_ = nullptr;
  mutable std::unique_ptr<WorkArena> owned_arena_;
};

}  // namespace updp2p::gossip
