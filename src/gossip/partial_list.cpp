#include "gossip/partial_list.hpp"

#include <algorithm>

namespace updp2p::gossip {

const char* to_string(PartialListMode mode) noexcept {
  switch (mode) {
    case PartialListMode::kNone: return "none";
    case PartialListMode::kUnbounded: return "unbounded";
    case PartialListMode::kDropRandom: return "drop-random";
    case PartialListMode::kDropHead: return "drop-head";
    case PartialListMode::kDropTail: return "drop-tail";
  }
  return "?";
}

template <typename RngT>
void build_forward_list_into(const PartialListConfig& config,
                             std::span<const common::PeerId> received,
                             std::span<const common::PeerId> new_targets,
                             common::PeerId self, RngT& rng,
                             common::DensePeerSet& seen_scratch,
                             std::vector<common::PeerId>& out) {
  out.clear();
  if (config.mode == PartialListMode::kNone) return;

  // Order matters for the head/tail drop policies: `received` entries are
  // the oldest knowledge, then self, then the targets just chosen.
  seen_scratch.clear();
  auto append = [&out, &seen_scratch](common::PeerId peer) {
    if (seen_scratch.insert(peer)) out.push_back(peer);
  };
  for (const common::PeerId peer : received) append(peer);
  append(self);
  for (const common::PeerId peer : new_targets) append(peer);

  if (config.mode == PartialListMode::kUnbounded ||
      out.size() <= config.max_entries) {
    return;
  }

  const std::size_t cap = config.max_entries;
  switch (config.mode) {
    case PartialListMode::kDropHead:
      // Keep the newest `cap` entries.
      out.erase(out.begin(),
                out.begin() + static_cast<std::ptrdiff_t>(out.size() - cap));
      break;
    case PartialListMode::kDropTail:
      out.resize(cap);
      break;
    case PartialListMode::kDropRandom: {
      // Partial Fisher–Yates: move `cap` random survivors to the front.
      for (std::size_t i = 0; i < cap; ++i) {
        const std::size_t j =
            i + static_cast<std::size_t>(rng.uniform_below(out.size() - i));
        std::swap(out[i], out[j]);
      }
      out.resize(cap);
      break;
    }
    case PartialListMode::kNone:
    case PartialListMode::kUnbounded:
      break;  // unreachable; handled above
  }
}

template <typename RngT>
std::vector<common::PeerId> build_forward_list(
    const PartialListConfig& config,
    const std::vector<common::PeerId>& received,
    const std::vector<common::PeerId>& new_targets, common::PeerId self,
    RngT& rng) {
  std::vector<common::PeerId> out;
  common::DensePeerSet seen;
  build_forward_list_into(config, received, new_targets, self, rng, seen, out);
  return out;
}

template void build_forward_list_into(const PartialListConfig&,
                                      std::span<const common::PeerId>,
                                      std::span<const common::PeerId>,
                                      common::PeerId, common::Rng&,
                                      common::DensePeerSet&,
                                      std::vector<common::PeerId>&);
template void build_forward_list_into(const PartialListConfig&,
                                      std::span<const common::PeerId>,
                                      std::span<const common::PeerId>,
                                      common::PeerId, common::StreamRng&,
                                      common::DensePeerSet&,
                                      std::vector<common::PeerId>&);
template std::vector<common::PeerId> build_forward_list(
    const PartialListConfig&, const std::vector<common::PeerId>&,
    const std::vector<common::PeerId>&, common::PeerId, common::Rng&);
template std::vector<common::PeerId> build_forward_list(
    const PartialListConfig&, const std::vector<common::PeerId>&,
    const std::vector<common::PeerId>&, common::PeerId, common::StreamRng&);

}  // namespace updp2p::gossip
