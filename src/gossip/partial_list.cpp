#include "gossip/partial_list.hpp"

#include <algorithm>
#include <unordered_set>

namespace updp2p::gossip {

const char* to_string(PartialListMode mode) noexcept {
  switch (mode) {
    case PartialListMode::kNone: return "none";
    case PartialListMode::kUnbounded: return "unbounded";
    case PartialListMode::kDropRandom: return "drop-random";
    case PartialListMode::kDropHead: return "drop-head";
    case PartialListMode::kDropTail: return "drop-tail";
  }
  return "?";
}

std::vector<common::PeerId> build_forward_list(
    const PartialListConfig& config,
    const std::vector<common::PeerId>& received,
    const std::vector<common::PeerId>& new_targets, common::PeerId self,
    common::Rng& rng) {
  if (config.mode == PartialListMode::kNone) return {};

  // Order matters for the head/tail drop policies: `received` entries are
  // the oldest knowledge, then self, then the targets just chosen.
  std::vector<common::PeerId> merged;
  merged.reserve(received.size() + new_targets.size() + 1);
  std::unordered_set<common::PeerId> seen;
  seen.reserve(merged.capacity() * 2);
  auto append = [&merged, &seen](common::PeerId peer) {
    if (seen.insert(peer).second) merged.push_back(peer);
  };
  for (const common::PeerId peer : received) append(peer);
  append(self);
  for (const common::PeerId peer : new_targets) append(peer);

  if (config.mode == PartialListMode::kUnbounded ||
      merged.size() <= config.max_entries) {
    return merged;
  }

  const std::size_t cap = config.max_entries;
  switch (config.mode) {
    case PartialListMode::kDropHead:
      // Keep the newest `cap` entries.
      merged.erase(merged.begin(),
                   merged.begin() +
                       static_cast<std::ptrdiff_t>(merged.size() - cap));
      break;
    case PartialListMode::kDropTail:
      merged.resize(cap);
      break;
    case PartialListMode::kDropRandom: {
      // Partial Fisher–Yates: move `cap` random survivors to the front.
      for (std::size_t i = 0; i < cap; ++i) {
        const std::size_t j =
            i + static_cast<std::size_t>(rng.uniform_below(merged.size() - i));
        std::swap(merged[i], merged[j]);
      }
      merged.resize(cap);
      break;
    }
    case PartialListMode::kNone:
    case PartialListMode::kUnbounded:
      break;  // unreachable; handled above
  }
  return merged;
}

}  // namespace updp2p::gossip
