#include "gossip/partial_list.hpp"

#include <algorithm>

namespace updp2p::gossip {

const char* to_string(PartialListMode mode) noexcept {
  switch (mode) {
    case PartialListMode::kNone: return "none";
    case PartialListMode::kUnbounded: return "unbounded";
    case PartialListMode::kDropRandom: return "drop-random";
    case PartialListMode::kDropHead: return "drop-head";
    case PartialListMode::kDropTail: return "drop-tail";
  }
  return "?";
}

template <typename RngT>
void build_forward_list_into(const PartialListConfig& config,
                             const common::ChunkedPeerSet& received,
                             std::span<const common::PeerId> new_targets,
                             common::PeerId self, RngT& rng,
                             common::ChunkedPeerSet& out) {
  out.clear();
  if (config.mode == PartialListMode::kNone) return;

  // Union: received ∪ {self} ∪ targets. The set representation dedups by
  // construction. Seed the tiny {self} ∪ targets side first (inserts into
  // a near-empty array chunk), then absorb the large received list in one
  // merge pass — the reverse order would pay a sorted-insert memmove per
  // target into an already-populated chunk.
  out.insert(self);
  for (const common::PeerId peer : new_targets) out.insert(peer);
  out.insert_all(received);

  if (config.mode == PartialListMode::kUnbounded ||
      out.size() <= config.max_entries) {
    return;
  }

  const std::size_t cap = config.max_entries;
  switch (config.mode) {
    case PartialListMode::kDropHead:
      // Discard the head of the id-ordered list: keep the highest ids.
      out.keep_highest(cap);
      break;
    case PartialListMode::kDropTail:
      out.keep_lowest(cap);
      break;
    case PartialListMode::kDropRandom:
      // Uniform cap-subset sampled from the compressed form.
      out.keep_random(rng, cap);
      break;
    case PartialListMode::kNone:
    case PartialListMode::kUnbounded:
      break;  // unreachable; handled above
  }
}

template <typename RngT>
common::ChunkedPeerSet build_forward_list(
    const PartialListConfig& config, const common::ChunkedPeerSet& received,
    const std::vector<common::PeerId>& new_targets, common::PeerId self,
    RngT& rng) {
  common::ChunkedPeerSet out;
  build_forward_list_into(config, received, new_targets, self, rng, out);
  return out;
}

template void build_forward_list_into(const PartialListConfig&,
                                      const common::ChunkedPeerSet&,
                                      std::span<const common::PeerId>,
                                      common::PeerId, common::Rng&,
                                      common::ChunkedPeerSet&);
template void build_forward_list_into(const PartialListConfig&,
                                      const common::ChunkedPeerSet&,
                                      std::span<const common::PeerId>,
                                      common::PeerId, common::StreamRng&,
                                      common::ChunkedPeerSet&);
template common::ChunkedPeerSet build_forward_list(
    const PartialListConfig&, const common::ChunkedPeerSet&,
    const std::vector<common::PeerId>&, common::PeerId, common::Rng&);
template common::ChunkedPeerSet build_forward_list(
    const PartialListConfig&, const common::ChunkedPeerSet&,
    const std::vector<common::PeerId>&, common::PeerId, common::StreamRng&);

}  // namespace updp2p::gossip
