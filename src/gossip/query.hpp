// Query servicing under updates (paper §4.4).
//
// "Since requests are more sensitive … we may define some majority logic,
// or use a version scheme for identifying latest updates, or a hybrid of
// the two." A query client contacts several online replicas (like a pull),
// collects their answers, and resolves with one of the three rules.
#pragma once

#include <optional>
#include <span>

#include "common/types.hpp"
#include "version/store.hpp"

namespace updp2p::gossip {

/// One replica's answer to a query for a key.
struct QueryAnswer {
  common::PeerId from;
  std::optional<version::VersionedValue> value;  ///< nullopt: unknown/deleted
  bool confident = true;                         ///< responder's own judgement
};

enum class QueryRule {
  kLatestVersion,  ///< causally greatest version wins (version scheme)
  kMajority,       ///< most frequent version id wins (majority logic)
  kHybrid,         ///< majority among the causally maximal versions
};

[[nodiscard]] const char* to_string(QueryRule rule) noexcept;

/// Resolves a set of answers under the given rule. Returns nullopt when no
/// replica returned a value (key unknown everywhere or deleted). Answers
/// from unconfident replicas are used only if no confident answer exists.
[[nodiscard]] std::optional<version::VersionedValue> resolve_query(
    std::span<const QueryAnswer> answers, QueryRule rule);

/// Deterministic single-peer winner among a set of (possibly concurrent)
/// versions — causal dominance, then total event count, then version id;
/// the same rule VersionedStore::read applies. nullopt for an empty set or
/// when the winner is a tombstone.
[[nodiscard]] std::optional<version::VersionedValue> local_winner(
    std::span<const version::VersionedValue> versions);

}  // namespace updp2p::gossip
