// Forward-probability decisions, including the §6 self-tuning controller.
//
// The base schedule PF(t) is deterministic in the push-round counter. The
// self-tuning controller modulates it with two purely local signals the
// paper identifies (§6):
//   * the rate of duplicate pushes recently received — many duplicates mean
//     the rumor has already spread widely, so forwarding is less useful;
//   * the length of the partial flooding list in the received message —
//     a long list directly estimates "the extent of propagation of [the]
//     update message".
#pragma once

#include "analysis/forward_probability.hpp"
#include "common/rng.hpp"
#include "common/types.hpp"
#include "gossip/config.hpp"

namespace updp2p::gossip {

class ForwardDecider {
 public:
  explicit ForwardDecider(const GossipConfig& config)
      : schedule_(config.forward_probability),
        self_tuning_(config.self_tuning),
        duplicate_damping_(config.duplicate_damping),
        min_probability_(config.min_forward_probability) {}

  /// Effective forwarding probability for an update received with round
  /// counter t−1 and about to be pushed in round t. `list_fraction` is the
  /// received partial list length normalised by the believed population.
  [[nodiscard]] double probability(common::Round t,
                                   double list_fraction) const;

  /// Bernoulli decision with the effective probability. Works with either
  /// RNG engine (Rng or StreamRng).
  template <typename RngT>
  [[nodiscard]] bool should_forward(RngT& rng, common::Round t,
                                    double list_fraction) const {
    return rng.bernoulli(probability(t, list_fraction));
  }

  /// §6 also tunes f_r: the effective fanout shrinks with the duplicate
  /// rate and the received list coverage, never below 1. Returns `base`
  /// unchanged when self-tuning is off.
  [[nodiscard]] std::size_t effective_fanout(std::size_t base,
                                             double list_fraction) const;

  /// Feeds the duplicate-rate estimator: call with `true` for a duplicate
  /// push and `false` for a first-time push.
  void observe_push(bool duplicate) noexcept;

  /// Exponentially weighted duplicates-per-push estimate in [0,1].
  [[nodiscard]] double duplicate_rate() const noexcept {
    return duplicate_rate_;
  }

 private:
  analysis::PfSchedule schedule_;
  bool self_tuning_;
  double duplicate_damping_;
  double min_probability_;
  double duplicate_rate_ = 0.0;

  static constexpr double kEwmaAlpha = 0.15;
};

}  // namespace updp2p::gossip
