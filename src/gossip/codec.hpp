// Binary wire codec for the gossip protocol messages.
//
// The simulators exchange in-memory payloads, but a deployment sends bytes.
// This codec defines a compact, versioned, self-describing encoding for
// every GossipPayload alternative:
//
//   frame   := magic(2) version(1) kind(1) body
//   varint  := LEB128 unsigned
//   string  := varint length || bytes
//   vv      := varint count || (varint peer, varint counter)*
//   value   := string key || string payload || digest128(16) || vv ||
//              flags(1) || float64 written_at
//   peerset := varint chunk_count || chunk*        (see below)
//   push    := value || varint round || peerset
//   pullreq := vv
//   pullresp:= vv || flags(1) || varint count || value*
//   ack     := digest128(16)
//
// The flooding list travels in the ChunkedPeerSet's canonical chunked
// form (format v2): each chunk covers one 2^16-id range and is either a
// delta-varint array (sparse) or a raw bitmap (dense):
//
//   chunk   := varint key || form(1) || varint cardinality || body
//   body    := first-low varint || (gap-1) varint*        form 0 (array)
//            | 1024 x u64 little-endian                   form 1 (bitmap)
//
// Chunk keys are strictly increasing (no overlapping ranges) and bounded
// by kMaxWirePeerId >> 16, which re-establishes the per-id bound: no id a
// chunk can express reaches kMaxWirePeerId. Canonical-form rules (array
// iff cardinality <= kArrayChunkMax, bitmap popcount must equal the
// declared cardinality, lows strictly increasing) are enforced on decode,
// so decode(encode(s)) == s bit-identically and hostile headers cannot
// smuggle oversized cardinalities.
//
// Decoding is fail-safe: malformed input yields std::nullopt, never UB —
// a peer must survive garbage from the network.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "gossip/messages.hpp"

namespace updp2p::gossip {

using WireBytes = std::vector<std::byte>;

/// Codec format version; bump on incompatible change. v2: flooding lists
/// switched from flat varint peer arrays to the chunked delta-varint set
/// encoding above.
inline constexpr std::uint8_t kCodecVersion = 2;

/// Upper bound (exclusive) on peer ids accepted off the wire. Decoded peer
/// ids index population-sized dense arrays (DensePeerSet stamp arrays), so
/// a hostile varint must not be able to command a multi-gigabyte resize or
/// smuggle in the PeerId::invalid() sentinel, which dense containers
/// reject by contract. 2^28 comfortably covers the paper's largest
/// evaluated population (10^8, Fig. 5).
inline constexpr std::uint64_t kMaxWirePeerId = std::uint64_t{1} << 28;

/// Upper bound (exclusive) on chunk keys in the peerset encoding: a chunk
/// keyed at or above this could express ids >= kMaxWirePeerId. Mirrored by
/// net::kMaxFrameChunkKey for transports that inspect frames.
inline constexpr std::uint64_t kMaxWireChunkKey =
    kMaxWirePeerId >> common::ChunkedPeerSet::kChunkBits;

/// Serialises any protocol payload into a framed byte string.
[[nodiscard]] WireBytes encode(const GossipPayload& payload);

/// Parses a framed byte string; nullopt on any malformation (bad magic,
/// unknown version/kind, truncation, overlong varint).
[[nodiscard]] std::optional<GossipPayload> decode(
    std::span<const std::byte> bytes);

// --- low-level primitives (exposed for tests and reuse) ---------------------

void put_varint(WireBytes& out, std::uint64_t value);

/// Reads a varint at `offset`, advancing it. nullopt on truncation or a
/// varint longer than 10 bytes.
[[nodiscard]] std::optional<std::uint64_t> get_varint(
    std::span<const std::byte> bytes, std::size_t& offset);

}  // namespace updp2p::gossip
