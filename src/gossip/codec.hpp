// Binary wire codec for the gossip protocol messages.
//
// The simulators exchange in-memory payloads, but a deployment sends bytes.
// This codec defines a compact, versioned, self-describing encoding for
// every GossipPayload alternative:
//
//   frame   := magic(2) version(1) kind(1) body
//   varint  := LEB128 unsigned
//   string  := varint length || bytes
//   vv      := varint count || (varint peer, varint counter)*
//   value   := string key || string payload || digest128(16) || vv ||
//              flags(1) || float64 written_at
//   peerset := varint chunk_count || chunk*        (see below)
//   push    := value || varint round || peerset
//   pullreq := vv
//   pullresp:= vv || flags(1) || varint count || value*
//   ack     := digest128(16)
//
// The flooding list travels in the ChunkedPeerSet's canonical chunked
// form (format v2): each chunk covers one 2^16-id range and is either a
// delta-varint array (sparse) or a raw bitmap (dense):
//
//   chunk   := varint key || form(1) || varint cardinality || body
//   body    := first-low varint || (gap-1) varint*        form 0 (array)
//            | 1024 x u64 little-endian                   form 1 (bitmap)
//
// Chunk keys are strictly increasing (no overlapping ranges) and bounded
// by kMaxWirePeerId >> 16, which re-establishes the per-id bound: no id a
// chunk can express reaches kMaxWirePeerId. Canonical-form rules (array
// iff cardinality <= kArrayChunkMax, bitmap popcount must equal the
// declared cardinality, lows strictly increasing) are enforced on decode,
// so decode(encode(s)) == s bit-identically and hostile headers cannot
// smuggle oversized cardinalities.
//
// Decoding is fail-safe: malformed input yields std::nullopt, never UB —
// a peer must survive garbage from the network.
//
// Zero-copy pipeline (docs/protocol.md "Frame sharing & lazy decode"):
// encoded frames are immutable once built, so a fan-out of N pushes shares
// ONE SharedFrame (refcount bumps, no re-encode); receivers classify
// duplicates from probe_frame() — a header probe that never touches the
// flooding-list section — and only first receipts pay the full decode,
// streaming the peerset chunks into a warm arena ChunkedPeerSet.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "gossip/messages.hpp"

namespace updp2p::gossip {

using WireBytes = std::vector<std::byte>;

/// Codec format version; bump on incompatible change. v2: flooding lists
/// switched from flat varint peer arrays to the chunked delta-varint set
/// encoding above.
inline constexpr std::uint8_t kCodecVersion = 2;

/// Upper bound (exclusive) on peer ids accepted off the wire. Decoded peer
/// ids index population-sized dense arrays (DensePeerSet stamp arrays), so
/// a hostile varint must not be able to command a multi-gigabyte resize or
/// smuggle in the PeerId::invalid() sentinel, which dense containers
/// reject by contract. 2^28 comfortably covers the paper's largest
/// evaluated population (10^8, Fig. 5).
inline constexpr std::uint64_t kMaxWirePeerId = std::uint64_t{1} << 28;

/// Upper bound (exclusive) on chunk keys in the peerset encoding: a chunk
/// keyed at or above this could express ids >= kMaxWirePeerId. Mirrored by
/// net::kMaxFrameChunkKey for transports that inspect frames.
inline constexpr std::uint64_t kMaxWireChunkKey =
    kMaxWirePeerId >> common::ChunkedPeerSet::kChunkBits;

/// Wire message kinds (the frame's kind byte). Values are the wire
/// encoding and must never be renumbered.
enum class WireKind : std::uint8_t {
  kPush = 1,
  kPullRequest = 2,
  kPullResponse = 3,
  kAck = 4,
  kQueryRequest = 5,
  kQueryReply = 6,
};

/// Serialises any protocol payload into a framed byte string.
[[nodiscard]] WireBytes encode(const GossipPayload& payload);

/// Appending encode into a caller-owned (typically pooled) buffer: the
/// buffer is cleared and filled with exactly what encode() would return,
/// but a warm buffer's capacity is reused instead of reallocated. This is
/// what lets PeerRuntime recycle DatagramBytes through a free list.
void encode_into(const GossipPayload& payload, WireBytes& out);

/// Exact wire size of encode(payload), computed without allocating: pure
/// varint-length arithmetic plus ChunkedPeerSet::wire_encoded_bytes() for
/// flooding lists. Invariant (pinned by codec tests):
///   encoded_size(p) == encode(p).size()  for every payload p.
[[nodiscard]] std::size_t encoded_size(const GossipPayload& payload);

/// Parses a framed byte string; nullopt on any malformation (bad magic,
/// unknown version/kind, truncation, overlong varint).
[[nodiscard]] std::optional<GossipPayload> decode(
    std::span<const std::byte> bytes);

/// One encoded frame shared by reference: the fan-out of a push to N
/// targets carries N copies of one SharedFrame (refcount bumps), and a
/// simulator's delivery path hands the same bytes to every recipient. The
/// bytes are immutable after construction — that is what makes sharing
/// across shard threads safe.
class SharedFrame {
 public:
  SharedFrame() = default;
  explicit SharedFrame(WireBytes bytes)
      : data_(std::make_shared<const WireBytes>(std::move(bytes))) {}

  /// False for a default-constructed (no frame) value.
  [[nodiscard]] explicit operator bool() const noexcept {
    return data_ != nullptr;
  }
  [[nodiscard]] std::span<const std::byte> bytes() const noexcept {
    return data_ ? std::span<const std::byte>(*data_)
                 : std::span<const std::byte>();
  }
  [[nodiscard]] std::size_t size_bytes() const noexcept {
    return data_ ? data_->size() : 0;
  }

 private:
  std::shared_ptr<const WireBytes> data_;
};

/// What a header probe can read without walking the variable-length tail:
/// the message kind plus the cheap identifying fields (enough for duplicate
/// classification and retry cancellation). See probe_frame() for the trust
/// contract.
struct FrameProbe {
  WireKind kind = WireKind::kPush;
  /// kPush: the pushed version's id. kAck: the acknowledged version.
  version::VersionId version;
  /// kQueryRequest / kQueryReply: the correlation nonce.
  std::uint64_t nonce = 0;
};

/// Cheap header probe: validates magic/version/kind and decodes ONLY the
/// probed fields (for a push that means skipping the two length-prefixed
/// strings and reading the 16-byte digest — the version vector, flags and
/// flooding list are never touched). nullopt when the probed prefix is
/// malformed.
///
/// Trust contract: a successful probe does NOT imply the frame decodes —
/// the unexamined tail may still be garbage. Callers may use the probe for
/// *monotone bookkeeping only* (duplicate counting, retry cancellation
/// lookups); any action that mutates protocol state from the frame's
/// contents must run the full decode first and handle its failure.
[[nodiscard]] std::optional<FrameProbe> probe_frame(
    std::span<const std::byte> bytes);

/// A push frame's fixed part, decoded by decode_push_into.
struct DecodedPush {
  version::VersionedValue value;  ///< (U, V)
  common::Round round = 0;        ///< t
};

/// Streaming first-receipt decode of a push frame: the flooding-list
/// chunks are decoded directly into `list` (cleared first; a warm arena
/// set reuses its parked chunk buffers, so the common case allocates
/// nothing) instead of materialising a temporary ChunkedPeerSet inside a
/// GossipPayload. Field-for-field equivalent to decode(): it succeeds
/// exactly when decode() yields a PushMessage, with identical value, round
/// and list (pinned by the codec fuzz suite). On failure `list` is left
/// cleared and the return is nullopt.
[[nodiscard]] std::optional<DecodedPush> decode_push_into(
    std::span<const std::byte> bytes, common::ChunkedPeerSet& list);

/// Single-entry encode cache for the fan-out-heavy dispatch path: a push
/// forwarded to N targets arrives as N OutboundMessages sharing one
/// SharedValue and one SharedPeerList, so keying on those identities (plus
/// the round) lets N-1 of the encodes collapse into refcount bumps.
/// Non-push payloads (and push payloads built fresh) are encoded directly.
/// One cache per WorkArena — single-threaded by the arena contract.
class FrameCache {
 public:
  /// Returns a frame whose bytes equal encode(payload), reusing the cached
  /// buffer when `payload` is the same shared push the last call encoded.
  [[nodiscard]] SharedFrame intern(const GossipPayload& payload);

  /// Frames served from the cache since construction (diagnostics).
  [[nodiscard]] std::uint64_t hits() const noexcept { return hits_; }
  /// Frames actually encoded since construction (diagnostics).
  [[nodiscard]] std::uint64_t encodes() const noexcept { return encodes_; }

 private:
  // The cache holds STRONG references to the keyed value/list (not raw
  // pointers): identities are compared as pointers, and keeping the
  // objects alive is what makes that sound — a freed allocation could
  // otherwise be recycled at the same address for different contents.
  SharedValue value_;
  SharedPeerList list_;
  common::Round round_ = 0;
  SharedFrame frame_;
  std::uint64_t hits_ = 0;
  std::uint64_t encodes_ = 0;
};

// --- low-level primitives (exposed for tests and reuse) ---------------------

/// Appends the canonical chunked peerset encoding (the `peerset` grammar
/// above) — the exact bytes a push frame carries for its flooding list.
/// Exposed for the durable store (src/store/): a snapshot's membership
/// section reuses this encoding verbatim, so one decoder (and one fuzz
/// surface) covers both the wire and the disk.
void encode_peer_set(WireBytes& out, const common::ChunkedPeerSet& set);

/// Decodes one peerset at `offset` (advancing it) into `set`, enforcing
/// every wire bound (strictly increasing chunk keys < kMaxWireChunkKey,
/// canonical forms, cardinality caps). `set` is cleared first; on failure
/// it is left cleared and false is returned.
[[nodiscard]] bool decode_peer_set(std::span<const std::byte> bytes,
                                   std::size_t& offset,
                                   common::ChunkedPeerSet& set);

/// Appends one versioned value in the `value` grammar above (also what
/// push / pull-response / query-reply frames carry). Snapshot reuse, as
/// with encode_peer_set.
void encode_value(WireBytes& out, const version::VersionedValue& value);

/// Decodes one versioned value at `offset` (advancing it); nullopt on any
/// malformation. Offset is unspecified after a failure.
[[nodiscard]] std::optional<version::VersionedValue> decode_value(
    std::span<const std::byte> bytes, std::size_t& offset);

void put_varint(WireBytes& out, std::uint64_t value);

/// Reads a varint at `offset`, advancing it. nullopt on truncation or a
/// varint longer than 10 bytes.
[[nodiscard]] std::optional<std::uint64_t> get_varint(
    std::span<const std::byte> bytes, std::size_t& offset);

}  // namespace updp2p::gossip
