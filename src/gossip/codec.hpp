// Binary wire codec for the gossip protocol messages.
//
// The simulators exchange in-memory payloads, but a deployment sends bytes.
// This codec defines a compact, versioned, self-describing encoding for
// every GossipPayload alternative:
//
//   frame   := magic(2) version(1) kind(1) body
//   varint  := LEB128 unsigned
//   string  := varint length || bytes
//   vv      := varint count || (varint peer, varint counter)*
//   value   := string key || string payload || digest128(16) || vv ||
//              flags(1) || float64 written_at
//   push    := value || varint round || varint count || varint peer*
//   pullreq := vv
//   pullresp:= vv || flags(1) || varint count || value*
//   ack     := digest128(16)
//
// Decoding is fail-safe: malformed input yields std::nullopt, never UB —
// a peer must survive garbage from the network.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "gossip/messages.hpp"

namespace updp2p::gossip {

using WireBytes = std::vector<std::byte>;

/// Codec format version; bump on incompatible change.
inline constexpr std::uint8_t kCodecVersion = 1;

/// Upper bound (exclusive) on peer ids accepted off the wire. Decoded peer
/// ids index population-sized dense arrays (DensePeerSet stamp arrays), so
/// a hostile varint must not be able to command a multi-gigabyte resize or
/// smuggle in the PeerId::invalid() sentinel, which dense containers
/// reject by contract. 2^28 comfortably covers the paper's largest
/// evaluated population (10^8, Fig. 5).
inline constexpr std::uint64_t kMaxWirePeerId = std::uint64_t{1} << 28;

/// Serialises any protocol payload into a framed byte string.
[[nodiscard]] WireBytes encode(const GossipPayload& payload);

/// Parses a framed byte string; nullopt on any malformation (bad magic,
/// unknown version/kind, truncation, overlong varint).
[[nodiscard]] std::optional<GossipPayload> decode(
    std::span<const std::byte> bytes);

// --- low-level primitives (exposed for tests and reuse) ---------------------

void put_varint(WireBytes& out, std::uint64_t value);

/// Reads a varint at `offset`, advancing it. nullopt on truncation or a
/// varint longer than 10 bytes.
[[nodiscard]] std::optional<std::uint64_t> get_varint(
    std::span<const std::byte> bytes, std::size_t& offset);

}  // namespace updp2p::gossip
