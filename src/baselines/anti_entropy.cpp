#include "baselines/anti_entropy.hpp"

#include "common/ensure.hpp"

namespace updp2p::baselines {

AntiEntropySystem::AntiEntropySystem(AntiEntropyConfig config,
                                     std::unique_ptr<churn::ChurnModel> churn)
    : config_(config), churn_(std::move(churn)), rng_(config.seed) {
  UPDP2P_ENSURE(churn_ != nullptr, "a churn model is required");
  UPDP2P_ENSURE(churn_->population() == config_.population,
                "churn population must match system population");
  UPDP2P_ENSURE(config_.partners_per_round > 0,
                "need at least one partner per round");
  stores_.resize(config_.population);
  churn_->reset(rng_);
}

std::uint64_t AntiEntropySystem::reconcile(common::PeerId puller,
                                           common::PeerId pulled) {
  auto& dst = stores_[puller.value()];
  const auto& src = stores_[pulled.value()];
  std::uint64_t transferred = 0;
  for (auto& value : src.missing_for(dst.stored_ids())) {
    dst.apply(std::move(value));
    ++transferred;
  }
  return transferred;
}

void AntiEntropySystem::run_round(AntiEntropyMetrics& metrics) {
  const auto online = churn_->online().online_peers();
  if (online.size() >= 2) {
    for (const common::PeerId peer : online) {
      for (unsigned k = 0; k < config_.partners_per_round; ++k) {
        common::PeerId partner = peer;
        while (partner == peer) {
          partner = online[rng_.pick_index(online.size())];
        }
        ++metrics.sync_sessions;
        metrics.values_transferred += reconcile(peer, partner);
        if (config_.push_pull) {
          metrics.values_transferred += reconcile(partner, peer);
        }
      }
    }
  }
  churn_->advance(rng_);
  ++metrics.rounds;
}

double AntiEntropySystem::aware_fraction() const {
  if (seeded_summary_.empty()) return 0.0;
  std::size_t aware = 0;
  for (const auto& store : stores_) {
    if (seeded_summary_.covered_by(store.summary())) ++aware;
  }
  return static_cast<double>(aware) / static_cast<double>(stores_.size());
}

AntiEntropyMetrics AntiEntropySystem::propagate_until_consistent(
    common::Round max_rounds) {
  const auto online = churn_->online().online_peers();
  UPDP2P_ENSURE(!online.empty(), "no online peer to seed the update at");
  const common::PeerId seed_peer = online[rng_.pick_index(online.size())];

  version::LocalWriter writer(seed_peer, rng_.split());
  const auto value = writer.write(stores_[seed_peer.value()], "item", "v1", 0.0);
  seeded_summary_ = value.history;

  AntiEntropyMetrics metrics;
  while (metrics.rounds < max_rounds) {
    run_round(metrics);
    metrics.final_aware_fraction = aware_fraction();
    if (metrics.final_aware_fraction >= 1.0) break;
  }
  return metrics;
}

}  // namespace updp2p::baselines
