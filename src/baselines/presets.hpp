// Comparison-scheme presets (paper §5.6, Table 2).
//
// The paper's central modelling claim is that the classic flooding/gossip
// variants are special cases of the generic push scheme: Gnutella is
// PF(t)=1 for TTL rounds with no partial list; Haas et al.'s GOSSIP1(p,k)
// floods for k rounds then forwards with probability p; "using partial
// list" is plain flooding plus R_f. These factory functions configure the
// same ReplicaNode the core scheme uses, so simulated comparisons differ
// only in the parameters — exactly the paper's setup.
#pragma once

#include <cstddef>
#include <string>

#include "gossip/config.hpp"

namespace updp2p::baselines {

/// A named protocol configuration for comparison tables.
struct Scheme {
  std::string name;
  gossip::GossipConfig config;
};

/// Gnutella-style limited flooding: fixed fanout, TTL rounds of PF=1, no
/// partial list; duplicate avoidance happens receiver-side (seen-cache),
/// which suppresses re-forwarding but not redundant transmissions (§5.6).
[[nodiscard]] Scheme gnutella(std::size_t total_replicas,
                              std::size_t absolute_fanout,
                              common::Round ttl = 64);

/// Plain flooding + the partial flooding list R_f (paper's first
/// improvement step in Table 2).
[[nodiscard]] Scheme partial_list_flooding(std::size_t total_replicas,
                                           std::size_t absolute_fanout);

/// Haas, Halpern, Li "Gossip-based ad hoc routing" GOSSIP1(p,k): pure
/// flooding for the first k rounds, then forward with probability p. No
/// partial list.
[[nodiscard]] Scheme haas_gossip(std::size_t total_replicas,
                                 std::size_t absolute_fanout, double p,
                                 common::Round flood_rounds);

/// The paper's scheme: partial list plus decaying PF(t) = base^t.
[[nodiscard]] Scheme datta_scheme(std::size_t total_replicas,
                                  std::size_t absolute_fanout,
                                  double pf_base = 0.9);

/// The paper's scheme with the Fig. 5 schedule PF(t) = a·b^t + c.
[[nodiscard]] Scheme datta_scheme_offset(std::size_t total_replicas,
                                         std::size_t absolute_fanout,
                                         double scale, double base,
                                         double offset);

/// Blind probabilistic gossip: constant PF = p every round, no list.
[[nodiscard]] Scheme blind_gossip(std::size_t total_replicas,
                                  std::size_t absolute_fanout, double p);

}  // namespace updp2p::baselines
