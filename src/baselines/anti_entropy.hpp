// Demers-style anti-entropy (pull-only) baseline.
//
// Paper §3 likens its pull phase to anti-entropy [9] (Demers et al., PODC
// 1987). This standalone implementation — every online peer periodically
// reconciles with one random partner via version-vector summaries — is the
// pull-only comparator: it converges without any push phase, but pays for
// it in per-round traffic and latency, which the pull-phase benches
// quantify.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "churn/churn_model.hpp"
#include "common/rng.hpp"
#include "common/types.hpp"
#include "version/store.hpp"

namespace updp2p::baselines {

struct AntiEntropyConfig {
  std::size_t population = 100;
  /// Partners each online peer contacts per round (usually 1 in [9]).
  unsigned partners_per_round = 1;
  /// Pull vs push-pull reconciliation: push-pull exchanges deltas both ways
  /// in a single pairing, converging roughly twice as fast.
  bool push_pull = false;
  std::uint64_t seed = 0x5eed;
};

struct AntiEntropyMetrics {
  common::Round rounds = 0;
  std::uint64_t sync_sessions = 0;       ///< pairwise exchanges performed
  std::uint64_t values_transferred = 0;  ///< versions shipped
  double final_aware_fraction = 0.0;     ///< peers holding the update
};

/// A population of versioned stores doing periodic anti-entropy under churn.
class AntiEntropySystem {
 public:
  AntiEntropySystem(AntiEntropyConfig config,
                    std::unique_ptr<churn::ChurnModel> churn);

  /// Seeds one update at a random online peer, then runs reconciliation
  /// rounds until every peer knows it or `max_rounds` elapse.
  AntiEntropyMetrics propagate_until_consistent(common::Round max_rounds);

  [[nodiscard]] version::VersionedStore& store(common::PeerId peer) {
    return stores_.at(peer.value());
  }
  [[nodiscard]] std::size_t population() const noexcept {
    return stores_.size();
  }
  /// Fraction of all peers whose summary covers the seeded update.
  [[nodiscard]] double aware_fraction() const;

 private:
  void run_round(AntiEntropyMetrics& metrics);
  std::uint64_t reconcile(common::PeerId puller, common::PeerId pulled);

  AntiEntropyConfig config_;
  std::unique_ptr<churn::ChurnModel> churn_;
  common::Rng rng_;
  std::vector<version::VersionedStore> stores_;
  version::VersionVector seeded_summary_;
};

}  // namespace updp2p::baselines
