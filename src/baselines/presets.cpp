#include "baselines/presets.hpp"

#include "common/ensure.hpp"

namespace updp2p::baselines {

namespace {
gossip::GossipConfig base_config(std::size_t total_replicas,
                                 std::size_t absolute_fanout) {
  UPDP2P_ENSURE(absolute_fanout > 0 && absolute_fanout <= total_replicas,
                "fanout must be in [1, R]");
  gossip::GossipConfig config;
  config.estimated_total_replicas = total_replicas;
  config.fanout_fraction = static_cast<double>(absolute_fanout) /
                           static_cast<double>(total_replicas);
  // Baseline comparisons isolate the push phase.
  config.pull.lazy = false;
  config.acks.enabled = false;
  return config;
}
}  // namespace

Scheme gnutella(std::size_t total_replicas, std::size_t absolute_fanout,
                common::Round ttl) {
  auto config = base_config(total_replicas, absolute_fanout);
  // TTL-limited flood: PF = 1 up to the TTL, 0 afterwards — G(0, ttl).
  config.forward_probability = analysis::pf_haas(0.0, ttl);
  config.partial_list.mode = gossip::PartialListMode::kNone;
  return Scheme{"Gnutella", std::move(config)};
}

Scheme partial_list_flooding(std::size_t total_replicas,
                             std::size_t absolute_fanout) {
  auto config = base_config(total_replicas, absolute_fanout);
  config.forward_probability = analysis::pf_constant(1.0);
  config.partial_list.mode = gossip::PartialListMode::kUnbounded;
  return Scheme{"Using Partial List", std::move(config)};
}

Scheme haas_gossip(std::size_t total_replicas, std::size_t absolute_fanout,
                   double p, common::Round flood_rounds) {
  auto config = base_config(total_replicas, absolute_fanout);
  config.forward_probability = analysis::pf_haas(p, flood_rounds);
  config.partial_list.mode = gossip::PartialListMode::kNone;
  return Scheme{"Haas et al. " + config.forward_probability.label,
                std::move(config)};
}

Scheme datta_scheme(std::size_t total_replicas, std::size_t absolute_fanout,
                    double pf_base) {
  auto config = base_config(total_replicas, absolute_fanout);
  config.forward_probability = analysis::pf_geometric(pf_base);
  config.partial_list.mode = gossip::PartialListMode::kUnbounded;
  return Scheme{"Our Scheme, " + config.forward_probability.label,
                std::move(config)};
}

Scheme datta_scheme_offset(std::size_t total_replicas,
                           std::size_t absolute_fanout, double scale,
                           double base, double offset) {
  auto config = base_config(total_replicas, absolute_fanout);
  config.forward_probability = analysis::pf_offset_geometric(scale, base, offset);
  config.partial_list.mode = gossip::PartialListMode::kUnbounded;
  return Scheme{"Our Scheme, " + config.forward_probability.label,
                std::move(config)};
}

Scheme blind_gossip(std::size_t total_replicas, std::size_t absolute_fanout,
                    double p) {
  auto config = base_config(total_replicas, absolute_fanout);
  config.forward_probability = analysis::pf_constant(p);
  config.partial_list.mode = gossip::PartialListMode::kNone;
  return Scheme{"Blind gossip " + config.forward_probability.label,
                std::move(config)};
}

}  // namespace updp2p::baselines
