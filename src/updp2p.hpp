// Umbrella header: the full public API of the updp2p library.
//
//   #include "updp2p.hpp"
//
// Fine-grained includes remain available (and preferable for compile
// times); this header exists for quick starts and scratch programs.
#pragma once

#include "analysis/flooding_model.hpp"      // IWYU pragma: export
#include "analysis/forward_probability.hpp" // IWYU pragma: export
#include "analysis/pull_model.hpp"          // IWYU pragma: export
#include "analysis/push_model.hpp"          // IWYU pragma: export
#include "baselines/anti_entropy.hpp"       // IWYU pragma: export
#include "baselines/presets.hpp"            // IWYU pragma: export
#include "churn/churn_model.hpp"            // IWYU pragma: export
#include "churn/heterogeneous.hpp"          // IWYU pragma: export
#include "churn/trace_io.hpp"               // IWYU pragma: export
#include "common/args.hpp"                  // IWYU pragma: export
#include "common/csv.hpp"                   // IWYU pragma: export
#include "common/rng.hpp"                   // IWYU pragma: export
#include "common/stats.hpp"                 // IWYU pragma: export
#include "common/table.hpp"                 // IWYU pragma: export
#include "common/types.hpp"                 // IWYU pragma: export
#include "gossip/codec.hpp"                 // IWYU pragma: export
#include "gossip/config.hpp"                // IWYU pragma: export
#include "gossip/messages.hpp"              // IWYU pragma: export
#include "gossip/node.hpp"                  // IWYU pragma: export
#include "gossip/query.hpp"                 // IWYU pragma: export
#include "net/frame.hpp"                    // IWYU pragma: export
#include "net/inproc_transport.hpp"         // IWYU pragma: export
#include "net/latency.hpp"                  // IWYU pragma: export
#include "net/message_bus.hpp"              // IWYU pragma: export
#include "net/transport.hpp"                // IWYU pragma: export
#include "net/udp_transport.hpp"            // IWYU pragma: export
#include "pgrid/pgrid.hpp"                  // IWYU pragma: export
#include "pgrid/replicated_index.hpp"       // IWYU pragma: export
#include "runtime/loopback_cluster.hpp"     // IWYU pragma: export
#include "runtime/peer_runtime.hpp"         // IWYU pragma: export
#include "runtime/retry.hpp"                // IWYU pragma: export
#include "runtime/timer_wheel.hpp"          // IWYU pragma: export
#include "sim/event_simulator.hpp"          // IWYU pragma: export
#include "sim/round_simulator.hpp"          // IWYU pragma: export
#include "sim/sweep.hpp"                    // IWYU pragma: export
#include "sim/workload.hpp"                 // IWYU pragma: export
