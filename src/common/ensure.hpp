// Precondition/invariant checking.
//
// Per the Core Guidelines (I.6/E.12): programming errors abort loudly;
// recoverable protocol conditions are modelled as values, never as these
// checks. UPDP2P_ENSURE stays active in release builds because simulation
// results silently corrupted by a violated invariant are worse than a crash.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace updp2p::common::detail {
[[noreturn]] inline void ensure_fail(const char* expr, const char* file,
                                     int line, const char* message) {
  std::fprintf(stderr, "updp2p invariant violated: %s\n  at %s:%d\n  %s\n",
               expr, file, line, message);
  std::abort();
}
}  // namespace updp2p::common::detail

#define UPDP2P_ENSURE(expr, message)                                        \
  do {                                                                      \
    if (!(expr)) [[unlikely]] {                                             \
      ::updp2p::common::detail::ensure_fail(#expr, __FILE__, __LINE__,      \
                                            message);                      \
    }                                                                       \
  } while (false)
