#include "common/types.hpp"

#include <ostream>

namespace updp2p::common {

std::ostream& operator<<(std::ostream& os, PeerId id) {
  return os << "peer#" << id.value();
}

std::ostream& operator<<(std::ostream& os, UpdateId id) {
  return os << "update#" << id.value();
}

}  // namespace updp2p::common
