// Minimal command-line flag parsing for the bench/example binaries.
//
// Flags use `--name value` or `--name=value`; `--flag` alone is a boolean
// true. Unknown flags are collected so callers can reject or ignore them.
// No global state, no registration macros — one Args object per main().
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace updp2p::common {

class Args {
 public:
  Args(int argc, const char* const* argv);

  [[nodiscard]] bool has(const std::string& name) const {
    return values_.contains(name);
  }

  [[nodiscard]] std::string get_string(const std::string& name,
                                       std::string fallback) const;
  [[nodiscard]] std::int64_t get_int(const std::string& name,
                                     std::int64_t fallback) const;
  [[nodiscard]] double get_double(const std::string& name,
                                  double fallback) const;
  /// --name, --name=true/1/yes/on => true; --name=false/0/no/off => false.
  [[nodiscard]] bool get_bool(const std::string& name, bool fallback) const;

  /// Non-flag positional arguments in order.
  [[nodiscard]] const std::vector<std::string>& positional() const noexcept {
    return positional_;
  }
  /// Flag names seen on the command line (for unknown-flag checks).
  [[nodiscard]] std::vector<std::string> flag_names() const;

 private:
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

}  // namespace updp2p::common
