// CRC-32C (Castagnoli, polynomial 0x1EDC6F41, reflected 0x82F63B78).
//
// The durable store (src/store/) checksums every log record and snapshot
// with CRC-32C: the polynomial's error-detection properties over short
// frames are well studied, the reflected table-driven form is branch-free,
// and the value matches every other CRC-32C implementation (iSCSI, ext4,
// leveldb), so fixtures can be cross-checked against known vectors.
//
// Implementation is slice-by-8: eight 256-entry tables, one 64-bit load
// per 8 input bytes. ~1 byte/cycle without hardware CRC instructions —
// far faster than the store's fsync budget, and fully portable.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

namespace updp2p::common {

/// CRC-32C of `bytes`, seeded by `seed` (pass a previous result to chain
/// a multi-span computation; 0 starts a fresh CRC). The conventional
/// pre/post inversion is applied per call, so
/// crc32c(b, crc32c(a)) == crc32c(a || b).
[[nodiscard]] std::uint32_t crc32c(std::span<const std::byte> bytes,
                                   std::uint32_t seed = 0) noexcept;

}  // namespace updp2p::common
