// Aligned text-table rendering for the benchmark harness: every bench binary
// prints the rows/series of one paper table or figure through this.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

namespace updp2p::common {

/// Column-aligned table with a title, header row and string cells.
/// Numeric convenience overloads format with a fixed precision.
class TextTable {
 public:
  explicit TextTable(std::string title) : title_(std::move(title)) {}

  TextTable& header(std::vector<std::string> columns);

  /// Begins a new row; subsequent cell() calls append to it.
  TextTable& row();
  TextTable& cell(std::string value);
  TextTable& cell(const char* value) { return cell(std::string(value)); }
  TextTable& cell(double value, int precision = 3);
  TextTable& cell(std::size_t value);
  TextTable& cell(long long value);

  void print(std::ostream& os) const;

  [[nodiscard]] std::size_t row_count() const noexcept { return rows_.size(); }

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with `precision` digits after the point.
[[nodiscard]] std::string format_double(double value, int precision = 3);

/// Renders a series of (x, y) points as a compact "x->y" listing, used by
/// figure benches to show discrete round marks like the paper's plots.
[[nodiscard]] std::string format_trajectory(const std::vector<double>& x,
                                            const std::vector<double>& y,
                                            int precision = 3);

}  // namespace updp2p::common
