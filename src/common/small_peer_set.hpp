// Compact open-addressing membership set over sparse peer ids.
//
// DensePeerSet costs O(max_id) memory per instance, which is fine for a
// handful of shared scratch sets but fatal for per-node state: at a 100k
// population, one stamp array per replica view is 400 KB x 100k nodes.
// A replica's view holds only the peers it actually knows, so its
// membership index should cost O(|view|): this set stores the 32-bit ids
// themselves in a power-of-two open-addressing table with linear probing
// (load factor <= 0.75). No tombstones — the protocol's views only grow
// (per-round *scratch* exclusion sets stay on DensePeerSet).
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/ensure.hpp"
#include "common/types.hpp"

namespace updp2p::common {

class SmallPeerSet {
 public:
  SmallPeerSet() = default;

  /// Grows the table so `count` ids insert without rehashing.
  void reserve(std::size_t count) {
    std::size_t wanted = kMinCapacity;
    while (wanted * 3 < count * 4) wanted *= 2;  // keep load <= 0.75
    if (wanted > slots_.size()) rehash(wanted);
  }

  /// Inserts `peer`; returns true when it was not already present.
  bool insert(PeerId peer) {
    const std::uint32_t id = key_of(peer);
    if (slots_.empty()) rehash(kMinCapacity);
    std::size_t slot = probe_start(id);
    while (slots_[slot] != kEmpty) {
      if (slots_[slot] == id) return false;
      slot = (slot + 1) & mask_;
    }
    slots_[slot] = id;
    ++size_;
    if (size_ * 4 > slots_.size() * 3) rehash(slots_.size() * 2);
    return true;
  }

  [[nodiscard]] bool contains(PeerId peer) const noexcept {
    if (slots_.empty()) return false;
    const std::uint32_t id = peer.value();
    if (id == kEmpty) return false;
    std::size_t slot = probe_start(id);
    while (slots_[slot] != kEmpty) {
      if (slots_[slot] == id) return true;
      slot = (slot + 1) & mask_;
    }
    return false;
  }

  /// Hints the cache that `peer`'s probe window is about to be read.
  void prefetch(PeerId peer) const noexcept {
    if (!slots_.empty()) __builtin_prefetch(&slots_[probe_start(peer.value())], 0, 1);
  }

  /// Empties the set; table capacity is retained.
  void clear() noexcept {
    std::fill(slots_.begin(), slots_.end(), kEmpty);
    size_ = 0;
  }

  /// Visits every stored id in table order. The order is deterministic
  /// for a given insert history (it depends only on hashing and rehash
  /// points), which is what the deterministic simulators require.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (const std::uint32_t id : slots_) {
      if (id != kEmpty) fn(PeerId(id));
    }
  }

  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }
  /// Current table width (diagnostics / tests).
  [[nodiscard]] std::size_t capacity() const noexcept { return slots_.size(); }

 private:
  static constexpr std::uint32_t kEmpty = ~std::uint32_t{0};
  static constexpr std::size_t kMinCapacity = 8;

  static std::uint32_t key_of(PeerId peer) {
    UPDP2P_ENSURE(peer.is_valid(), "SmallPeerSet requires valid peer ids");
    return peer.value();
  }

  /// 32-bit avalanche mix (Murmur3 finalizer): sequential ids — the common
  /// dense-population case — spread over the whole table.
  [[nodiscard]] std::size_t probe_start(std::uint32_t id) const noexcept {
    std::uint32_t h = id;
    h ^= h >> 16;
    h *= 0x85ebca6bu;
    h ^= h >> 13;
    h *= 0xc2b2ae35u;
    h ^= h >> 16;
    return h & mask_;
  }

  void rehash(std::size_t new_capacity) {
    std::vector<std::uint32_t> old = std::move(slots_);
    slots_.assign(new_capacity, kEmpty);
    mask_ = new_capacity - 1;
    for (const std::uint32_t id : old) {
      if (id == kEmpty) continue;
      std::size_t slot = probe_start(id);
      while (slots_[slot] != kEmpty) slot = (slot + 1) & mask_;
      slots_[slot] = id;
    }
  }

  std::vector<std::uint32_t> slots_;
  std::size_t mask_ = 0;
  std::size_t size_ = 0;
};

}  // namespace updp2p::common
