// Epoch-stamped membership set over dense peer ids.
//
// The simulation hot path (target sampling, forward-list dedup, exclusion
// checks) used to churn std::unordered_set instances: one heap allocation
// plus hashing per call. PeerIds are dense (0..N-1 per population, see
// types.hpp), so membership can instead be a stamp array: slot i holds the
// epoch in which peer i was last inserted, and `clear()` is a single epoch
// increment — O(1), no deallocation, no rehash. A cleared set is reusable
// immediately, which is what makes per-round scratch buffers allocation-free
// once they reach steady-state capacity.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/ensure.hpp"
#include "common/types.hpp"

namespace updp2p::common {

class DensePeerSet {
 public:
  DensePeerSet() = default;
  /// Pre-sizes the stamp array for ids in [0, capacity).
  explicit DensePeerSet(std::size_t capacity) { reserve_ids(capacity); }

  /// Grows the stamp array so ids in [0, count) insert without resizing.
  void reserve_ids(std::size_t count) {
    if (count > stamps_.size()) stamps_.resize(count, 0);
  }

  /// Empties the set in O(1) by advancing the epoch; capacity is retained.
  void clear() noexcept {
    if (epoch_ == ~std::uint32_t{0}) {
      // Epoch wrapped: stale stamps could alias the new epoch, so reset.
      std::fill(stamps_.begin(), stamps_.end(), 0);
      epoch_ = 0;
    }
    ++epoch_;
    size_ = 0;
  }

  /// Inserts `peer`; returns true when it was not already present.
  bool insert(PeerId peer) {
    const std::size_t id = index_of(peer);
    if (id >= stamps_.size()) {
      // Grow geometrically: ids often arrive in ascending order (merged
      // flooding lists), and growing one slot at a time costs a zero-fill
      // per insert instead of an amortized one.
      stamps_.resize(std::max(id + 1, stamps_.size() * 2), 0);
    }
    if (stamps_[id] == epoch_) return false;
    stamps_[id] = epoch_;
    ++size_;
    return true;
  }

  /// Hints the cache that `peer`'s stamp slot is about to be probed.
  /// Lookups over merged peer lists are random accesses into a stamp array
  /// that is usually cold (every delivery targets a different node), so
  /// issuing prefetches a few entries ahead overlaps the memory latency.
  void prefetch(PeerId peer) const noexcept {
    const std::size_t id = peer.value();
    if (id < stamps_.size()) __builtin_prefetch(&stamps_[id], 1, 1);
  }

  [[nodiscard]] bool contains(PeerId peer) const noexcept {
    const std::size_t id = peer.value();
    return id < stamps_.size() && stamps_[id] == epoch_;
  }

  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }
  /// Ids the stamp array currently covers without growing.
  [[nodiscard]] std::size_t capacity() const noexcept {
    return stamps_.size();
  }

 private:
  static std::size_t index_of(PeerId peer) {
    UPDP2P_ENSURE(peer.is_valid(),
                  "DensePeerSet requires dense, valid peer ids");
    return peer.value();
  }

  std::vector<std::uint32_t> stamps_;  ///< stamps_[id] == epoch_ <=> present
  std::uint32_t epoch_ = 1;
  std::size_t size_ = 0;
};

}  // namespace updp2p::common
