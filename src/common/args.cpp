#include "common/args.hpp"

#include <algorithm>
#include <cstdlib>

namespace updp2p::common {

Args::Args(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string token = argv[i];
    if (token.size() < 3 || token.substr(0, 2) != "--") {
      positional_.push_back(token);
      continue;
    }
    const std::string body = token.substr(2);
    const auto equals = body.find('=');
    if (equals != std::string::npos) {
      values_[body.substr(0, equals)] = body.substr(equals + 1);
    } else if (i + 1 < argc && std::string(argv[i + 1]).substr(0, 2) != "--") {
      values_[body] = argv[++i];
    } else {
      values_[body] = "";  // bare boolean flag
    }
  }
}

std::string Args::get_string(const std::string& name,
                             std::string fallback) const {
  const auto it = values_.find(name);
  return it == values_.end() ? std::move(fallback) : it->second;
}

std::int64_t Args::get_int(const std::string& name,
                           std::int64_t fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end() || it->second.empty()) return fallback;
  char* end = nullptr;
  const long long parsed = std::strtoll(it->second.c_str(), &end, 10);
  return end != nullptr && *end == '\0' ? parsed : fallback;
}

double Args::get_double(const std::string& name, double fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end() || it->second.empty()) return fallback;
  char* end = nullptr;
  const double parsed = std::strtod(it->second.c_str(), &end);
  return end != nullptr && *end == '\0' ? parsed : fallback;
}

bool Args::get_bool(const std::string& name, bool fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  std::string value = it->second;
  std::transform(value.begin(), value.end(), value.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  if (value.empty() || value == "1" || value == "true" || value == "yes" ||
      value == "on") {
    return true;
  }
  if (value == "0" || value == "false" || value == "no" || value == "off") {
    return false;
  }
  return fallback;
}

std::vector<std::string> Args::flag_names() const {
  std::vector<std::string> names;
  names.reserve(values_.size());
  for (const auto& [name, value] : values_) names.push_back(name);
  return names;
}

}  // namespace updp2p::common
