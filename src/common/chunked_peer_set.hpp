// Adaptive compressed peer-id set (roaring-style).
//
// A flooding list R_f names a subset of a dense id universe, and §4–5 of
// the paper make its *size on the wire* a first-class cost. A flat vector
// pays 4 bytes per entry in memory, ~10 modelled bytes on the wire, and
// O(|R_f|) per membership probe. This container splits the 32-bit id space
// into 2^16-id chunks keyed by the high 16 bits and stores each chunk in
// whichever form is smaller:
//
//   * a sorted array of 16-bit low halves while the chunk is sparse
//     (<= kArrayChunkMax entries, 2 bytes per peer), or
//   * a packed 8 KiB bitmap once the chunk saturates (1 bit per id),
//
// promoting and demoting automatically so the representation is a pure
// function of the contents (canonical form). Canonicality is what makes
// equality chunk-wise, the wire encoding deterministic, and a decode of an
// encode bit-identical to the source set.
//
// Set algebra runs chunk-at-a-time: union and difference over bitmap
// chunks are 64-bit OR / AND-NOT sweeps (word-parallel — 64 ids per
// instruction), array chunks use linear merges or galloping probes when
// one side is much smaller. `absorb` fuses "which of these are new?" with
// the union itself, which is exactly the shape of a view merging a
// received flooding list.
//
// Iteration (for_each, absorb callbacks) is always in ascending id order;
// deterministic simulation depends on that, so it is part of the contract.
//
// clear() parks chunk buffers on an internal free list instead of freeing
// them, so a warm set rebuilt every round performs no heap allocation —
// the same steady-state property DensePeerSet gives the stamp scratch.
#pragma once

#include <algorithm>
#include <bit>
#include <cstdint>
#include <span>
#include <vector>

#include "common/ensure.hpp"
#include "common/types.hpp"

namespace updp2p::common {

class ChunkedPeerSet {
 public:
  /// Ids per chunk: the low 16 bits index within a chunk, the high bits
  /// select it.
  static constexpr std::uint32_t kChunkBits = 16;
  static constexpr std::uint32_t kChunkSpan = 1u << kChunkBits;
  /// 64-bit words in a bitmap chunk (8 KiB).
  static constexpr std::size_t kBitmapWords = kChunkSpan / 64;
  /// Canonical representation boundary: a chunk holding more than this
  /// many ids is a bitmap, otherwise a sorted array. 4096 entries is where
  /// the 2-byte-per-entry array crosses the fixed 8 KiB bitmap.
  static constexpr std::uint32_t kArrayChunkMax = 4096;

  /// One 2^16-id range. Exposed read-only for the wire codec; everything
  /// else should go through the set-level operations.
  struct Chunk {
    std::uint16_t key = 0;           ///< id >> 16
    std::uint32_t cardinality = 0;   ///< ids present in this chunk
    std::vector<std::uint16_t> lows; ///< sorted low halves (array form)
    std::vector<std::uint64_t> bits; ///< kBitmapWords words (bitmap form)

    [[nodiscard]] bool is_bitmap() const noexcept { return !bits.empty(); }
  };

  ChunkedPeerSet() = default;
  ChunkedPeerSet(std::initializer_list<PeerId> peers) {
    for (const PeerId peer : peers) insert(peer);
  }

  // Copies drop the scratch free list; only live chunks transfer.
  ChunkedPeerSet(const ChunkedPeerSet& other)
      : chunks_(other.chunks_), size_(other.size_) {}
  ChunkedPeerSet& operator=(const ChunkedPeerSet& other) {
    if (this != &other) {
      chunks_ = other.chunks_;
      size_ = other.size_;
    }
    return *this;
  }
  ChunkedPeerSet(ChunkedPeerSet&&) noexcept = default;
  ChunkedPeerSet& operator=(ChunkedPeerSet&&) noexcept = default;

  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }
  [[nodiscard]] std::span<const Chunk> chunks() const noexcept {
    return chunks_;
  }

  /// Empties the set; chunk buffers are parked for reuse, so a warm set
  /// refilled to a similar shape allocates nothing.
  void clear() noexcept {
    for (Chunk& chunk : chunks_) {
      chunk.cardinality = 0;
      chunk.lows.clear();
      chunk.bits.clear();
      spare_.push_back(std::move(chunk));
    }
    chunks_.clear();
    size_ = 0;
  }

  /// Inserts `peer`; returns true when it was not already present.
  bool insert(PeerId peer) {
    UPDP2P_ENSURE(peer.is_valid(),
                  "ChunkedPeerSet requires valid peer ids");
    const auto key = static_cast<std::uint16_t>(peer.value() >> kChunkBits);
    const auto low = static_cast<std::uint16_t>(peer.value());
    Chunk& chunk = chunk_for(key);
    if (chunk.is_bitmap()) {
      std::uint64_t& word = chunk.bits[low >> 6];
      const std::uint64_t mask = std::uint64_t{1} << (low & 63);
      if ((word & mask) != 0) return false;
      word |= mask;
    } else {
      const auto it =
          std::lower_bound(chunk.lows.begin(), chunk.lows.end(), low);
      if (it != chunk.lows.end() && *it == low) return false;
      chunk.lows.insert(it, low);
      if (chunk.lows.size() > kArrayChunkMax) promote(chunk);
    }
    ++chunk.cardinality;
    ++size_;
    return true;
  }

  [[nodiscard]] bool contains(PeerId peer) const noexcept {
    if (!peer.is_valid()) return false;
    const auto key = static_cast<std::uint16_t>(peer.value() >> kChunkBits);
    const Chunk* chunk = find_chunk(key);
    if (chunk == nullptr) return false;
    const auto low = static_cast<std::uint16_t>(peer.value());
    if (chunk->is_bitmap()) {
      return (chunk->bits[low >> 6] >> (low & 63)) & 1;
    }
    return std::binary_search(chunk->lows.begin(), chunk->lows.end(), low);
  }

  /// Id at the given ascending rank (0-based); `rank` must be < size().
  /// Array chunks answer by direct index; bitmap chunks by a popcount
  /// scan. This is what lets uniform sampling run straight off the
  /// compressed form — no materialised member vector needed.
  [[nodiscard]] PeerId select_rank(std::size_t rank) const;

  /// Number of members strictly below `peer` (which need not be present).
  [[nodiscard]] std::size_t rank_of(PeerId peer) const noexcept;

  /// Largest id in the set; the set must be non-empty.
  [[nodiscard]] std::uint32_t max_id() const {
    UPDP2P_ENSURE(size_ > 0, "max_id() on an empty ChunkedPeerSet");
    const Chunk& chunk = chunks_.back();
    const std::uint32_t base = std::uint32_t{chunk.key} << kChunkBits;
    if (!chunk.is_bitmap()) return base | chunk.lows.back();
    for (std::size_t w = kBitmapWords; w-- > 0;) {
      if (chunk.bits[w] != 0) {
        return base |
               static_cast<std::uint32_t>(
                   w * 64 + (63 - std::countl_zero(chunk.bits[w])));
      }
    }
    UPDP2P_ENSURE(false, "bitmap chunk with nonzero cardinality has no bits");
    return 0;
  }

  /// Visits every id in ascending order (part of the contract: callers use
  /// this order for deterministic downstream draws).
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (const Chunk& chunk : chunks_) for_each_in_chunk(chunk, fn);
  }

  /// Union: adds every id of `other` to this set. Bitmap/bitmap pairs run
  /// word-parallel (64-bit OR).
  void insert_all(const ChunkedPeerSet& other) {
    absorb(other, [](PeerId) {});
  }

  /// Union fused with novelty detection: every id of `other` that was NOT
  /// already present is reported to `on_new` (ascending order) and then
  /// inserted. This is the shape of a view merge — one pass computes both
  /// the difference (word-parallel AND-NOT over bitmap chunks) and the
  /// union.
  template <typename Fn>
  void absorb(const ChunkedPeerSet& other, Fn&& on_new) {
    if (other.empty() || &other == this) return;
    // Iterate by index: inserting chunks invalidates iterators. Both chunk
    // lists are key-sorted, so a single merge walk pairs them up.
    std::size_t mine = 0;
    for (const Chunk& theirs : other.chunks_) {
      while (mine < chunks_.size() && chunks_[mine].key < theirs.key) ++mine;
      if (mine == chunks_.size() || chunks_[mine].key > theirs.key) {
        // No local chunk for this range: everything in it is new.
        for_each_in_chunk(theirs, on_new);
        chunks_.insert(chunks_.begin() + static_cast<std::ptrdiff_t>(mine),
                       copy_chunk(theirs));
        size_ += theirs.cardinality;
        ++mine;
        continue;
      }
      absorb_chunk(chunks_[mine], theirs, on_new);
      ++mine;
    }
  }

  /// Difference: removes every id of `other` from this set (R \ other).
  /// Bitmap/bitmap pairs run word-parallel (64-bit AND-NOT); when an array
  /// chunk meets a much larger one, membership is resolved by galloping
  /// (binary-search) probes instead of a full linear merge.
  void subtract(const ChunkedPeerSet& other);

  /// Keeps the `cap` smallest ids, dropping the rest. (Under a sorted-set
  /// representation the head/tail drop policies of §4.2 order by peer id.)
  void keep_lowest(std::size_t cap);

  /// Keeps the `cap` largest ids, dropping the rest.
  void keep_highest(std::size_t cap);

  /// Keeps `cap` ids drawn uniformly without replacement (Floyd's
  /// algorithm over ranks), sampling directly from the compressed form —
  /// the surviving elements never materialise as a full vector. Draws
  /// exactly min(cap, size) uniform_below calls, independent of set size.
  template <typename RngT>
  void keep_random(RngT& rng, std::size_t cap) {
    if (cap >= size_) return;
    if (cap == 0) {
      clear();
      return;
    }
    // Floyd's F2: for j in [n-cap, n), pick r <= j; take j itself iff r was
    // already taken. Yields a uniform cap-subset of ranks [0, n). Taken
    // ranks live in a scratch bitset (O(1) membership; clearing costs
    // n/64 words) and are sorted once at the end — the sorted-insert
    // alternative is O(cap^2) element moves.
    rank_scratch_.clear();
    rank_bits_.assign((size_ + 63) / 64, 0);
    const auto test_and_set = [this](std::uint32_t r) {
      std::uint64_t& word = rank_bits_[r >> 6];
      const std::uint64_t mask = std::uint64_t{1} << (r & 63);
      const bool taken = (word & mask) != 0;
      word |= mask;
      return taken;
    };
    for (std::size_t j = size_ - cap; j < size_; ++j) {
      const auto r = static_cast<std::uint32_t>(rng.uniform_below(j + 1));
      if (test_and_set(r)) {
        // Floyd's invariant: j itself cannot have been taken yet.
        const auto jj = static_cast<std::uint32_t>(j);
        (void)test_and_set(jj);
        rank_scratch_.push_back(jj);
      } else {
        rank_scratch_.push_back(r);
      }
    }
    std::sort(rank_scratch_.begin(), rank_scratch_.end());
    keep_ranks(rank_scratch_);
  }

  /// Copies the contents into `out` (ascending), replacing it.
  void to_vector(std::vector<PeerId>& out) const {
    out.clear();
    out.reserve(size_);
    for_each([&out](PeerId peer) { out.push_back(peer); });
  }

  /// Heap bytes held by live chunks (excludes parked spare buffers).
  [[nodiscard]] std::size_t memory_bytes() const noexcept {
    std::size_t total = chunks_.capacity() * sizeof(Chunk);
    for (const Chunk& chunk : chunks_) {
      total += chunk.lows.capacity() * sizeof(std::uint16_t);
      total += chunk.bits.capacity() * sizeof(std::uint64_t);
    }
    return total;
  }

  /// Exact byte count of this set's canonical wire encoding (the chunked
  /// delta-varint layout produced by gossip::put_peer_set): varint chunk
  /// count, then per chunk varint key + form byte + varint cardinality +
  /// (delta-varint lows | raw bitmap words). Kept in sync with the codec
  /// by round-trip tests; the bandwidth model uses it so accounted bytes
  /// match bytes a real transport would send.
  [[nodiscard]] std::size_t wire_encoded_bytes() const noexcept;

  // --- wire-decode builders ---------------------------------------------------
  // Append one chunk; `key` must exceed every existing chunk's key. The
  // canonical-form rules are enforced (returns false on violation instead
  // of aborting — the caller is a decoder facing hostile input): an array
  // chunk needs 1..kArrayChunkMax strictly increasing lows; a bitmap chunk
  // needs more than kArrayChunkMax bits set. On success the chunk is
  // adopted verbatim.

  [[nodiscard]] bool append_array_chunk(std::uint16_t key,
                                        std::span<const std::uint16_t> lows);
  [[nodiscard]] bool append_bitmap_chunk(std::uint16_t key,
                                         std::span<const std::uint64_t> words);

  friend bool operator==(const ChunkedPeerSet& a, const ChunkedPeerSet& b) {
    if (a.size_ != b.size_ || a.chunks_.size() != b.chunks_.size()) {
      return false;
    }
    for (std::size_t i = 0; i < a.chunks_.size(); ++i) {
      const Chunk& ca = a.chunks_[i];
      const Chunk& cb = b.chunks_[i];
      // Canonical form: equal contents imply equal representation.
      if (ca.key != cb.key || ca.cardinality != cb.cardinality ||
          ca.lows != cb.lows || ca.bits != cb.bits) {
        return false;
      }
    }
    return true;
  }

 private:
  template <typename Fn>
  static void for_each_in_chunk(const Chunk& chunk, Fn& fn) {
    const std::uint32_t base = std::uint32_t{chunk.key} << kChunkBits;
    if (chunk.is_bitmap()) {
      for (std::size_t w = 0; w < kBitmapWords; ++w) {
        std::uint64_t word = chunk.bits[w];
        while (word != 0) {
          const auto bit = static_cast<std::uint32_t>(std::countr_zero(word));
          fn(PeerId(base + static_cast<std::uint32_t>(w * 64) + bit));
          word &= word - 1;
        }
      }
    } else {
      for (const std::uint16_t low : chunk.lows) fn(PeerId(base | low));
    }
  }

  /// Finds the chunk for `key`, creating (and key-sorting in) an empty
  /// array chunk if absent.
  Chunk& chunk_for(std::uint16_t key);
  [[nodiscard]] const Chunk* find_chunk(std::uint16_t key) const noexcept {
    const auto it = std::lower_bound(
        chunks_.begin(), chunks_.end(), key,
        [](const Chunk& chunk, std::uint16_t k) { return chunk.key < k; });
    return it != chunks_.end() && it->key == key ? &*it : nullptr;
  }

  /// Takes a parked chunk buffer (or a fresh one) with the given key.
  Chunk take_chunk(std::uint16_t key);
  /// Deep copy reusing a parked buffer.
  Chunk copy_chunk(const Chunk& source);
  /// Array -> bitmap (contents unchanged).
  static void promote(Chunk& chunk);
  /// Bitmap -> array; requires cardinality <= kArrayChunkMax.
  static void demote(Chunk& chunk);
  /// Re-establishes canonical form after a cardinality change.
  static void canonicalize(Chunk& chunk) {
    if (chunk.is_bitmap() && chunk.cardinality <= kArrayChunkMax) {
      demote(chunk);
    } else if (!chunk.is_bitmap() && chunk.lows.size() > kArrayChunkMax) {
      promote(chunk);
    }
  }
  /// Drops chunks whose cardinality reached zero, parking their buffers.
  void drop_empty_chunks();
  /// Keeps exactly the ids at the given sorted, distinct ranks.
  void keep_ranks(const std::vector<std::uint32_t>& ranks);

  template <typename Fn>
  void absorb_chunk(Chunk& ours, const Chunk& theirs, Fn& on_new) {
    const std::uint32_t base = std::uint32_t{ours.key} << kChunkBits;
    const std::uint32_t before = ours.cardinality;
    if (ours.is_bitmap() && theirs.is_bitmap()) {
      // Word-parallel difference + union: 64 ids per AND-NOT/OR pair. The
      // store is gated on novelty so a duplicate list (the common case on
      // re-delivery) touches the 8 KiB bitmap read-only.
      for (std::size_t w = 0; w < kBitmapWords; ++w) {
        std::uint64_t fresh = theirs.bits[w] & ~ours.bits[w];
        if (fresh == 0) continue;
        ours.bits[w] |= theirs.bits[w];
        ours.cardinality += static_cast<std::uint32_t>(std::popcount(fresh));
        do {
          const auto bit = static_cast<std::uint32_t>(std::countr_zero(fresh));
          on_new(PeerId(base + static_cast<std::uint32_t>(w * 64) + bit));
          fresh &= fresh - 1;
        } while (fresh != 0);
      }
    } else if (ours.is_bitmap()) {
      for (const std::uint16_t low : theirs.lows) {
        std::uint64_t& word = ours.bits[low >> 6];
        const std::uint64_t mask = std::uint64_t{1} << (low & 63);
        if ((word & mask) == 0) {
          word |= mask;
          ++ours.cardinality;
          on_new(PeerId(base | low));
        }
      }
    } else if (theirs.is_bitmap()) {
      // Result exceeds kArrayChunkMax (theirs alone does); promote first,
      // then flag our pre-existing ids and walk theirs word-parallel.
      promote(ours);
      absorb_chunk(ours, theirs, on_new);
      return;
    } else {
      // Sorted-array union, difference first: pass 1 collects theirs \ ours
      // into scratch (ascending) without writing a single element of ours,
      // so the dominant duplicate-delivery case — the incoming list is a
      // subset of what we already hold — costs one read-only scan. The
      // probe walk gallops (restartable lower_bound) when ours dwarfs
      // theirs, and runs a dual-pointer sweep otherwise.
      merge_scratch_.clear();
      const std::vector<std::uint16_t>& a = ours.lows;
      const std::vector<std::uint16_t>& b = theirs.lows;
      if (a.size() >= 8 * b.size()) {
        auto it = a.begin();
        for (const std::uint16_t low : b) {
          it = std::lower_bound(it, a.end(), low);
          if (it == a.end() || *it != low) merge_scratch_.push_back(low);
        }
      } else {
        std::size_t i = 0;
        for (const std::uint16_t low : b) {
          while (i < a.size() && a[i] < low) ++i;
          if (i == a.size() || a[i] != low) merge_scratch_.push_back(low);
        }
      }
      if (!merge_scratch_.empty()) {
        for (const std::uint16_t low : merge_scratch_) {
          on_new(PeerId(base | low));
        }
        // Pass 2: in-place backward merge of the fresh lows; writes stop at
        // the first position where the remaining prefix is already placed.
        const std::size_t n = ours.lows.size();
        std::size_t j = merge_scratch_.size();
        ours.cardinality += static_cast<std::uint32_t>(j);
        ours.lows.resize(n + j);
        std::size_t i = n;
        std::size_t w = n + j;
        while (j > 0) {
          if (i > 0 && ours.lows[i - 1] > merge_scratch_[j - 1]) {
            ours.lows[--w] = ours.lows[--i];
          } else {
            ours.lows[--w] = merge_scratch_[--j];
          }
        }
        if (ours.lows.size() > kArrayChunkMax) promote(ours);
      }
    }
    size_ += ours.cardinality - before;
  }

  std::vector<Chunk> chunks_;  ///< key-sorted, canonical form
  std::size_t size_ = 0;
  std::vector<Chunk> spare_;   ///< parked buffers for allocation-free reuse
  std::vector<std::uint16_t> merge_scratch_;
  std::vector<std::uint32_t> rank_scratch_;
  std::vector<std::uint64_t> rank_bits_;  ///< keep_random taken-rank bitset
};

}  // namespace updp2p::common
