// Deterministic, splittable random number generation.
//
// Every stochastic component in updp2p (churn, fanout selection, forward
// coin flips, latency models) draws from an Rng that is seeded explicitly,
// so a whole experiment is reproducible from a single root seed. `split()`
// derives statistically independent child streams, which lets each peer own
// its own generator without coordination — matching the paper's "purely
// local knowledge" setting.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/types.hpp"

namespace updp2p::common {

/// splitmix64 step — used for seeding and stream derivation.
/// Reference: Steele, Lea, Flood, "Fast splittable pseudorandom number
/// generators", OOPSLA 2014.
[[nodiscard]] constexpr std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256** PRNG (Blackman & Vigna). Small, fast, passes BigCrush;
/// plenty for simulation workloads. Satisfies UniformRandomBitGenerator.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the four words of state from `seed` via splitmix64, per the
  /// xoshiro authors' recommendation.
  explicit Rng(std::uint64_t seed = 0x1234567890abcdefULL) noexcept;

  [[nodiscard]] static constexpr result_type min() noexcept { return 0; }
  [[nodiscard]] static constexpr result_type max() noexcept {
    return ~std::uint64_t{0};
  }

  result_type operator()() noexcept;

  /// Derives an independent child generator. The child's seed mixes this
  /// generator's next output, so repeated splits yield distinct streams.
  [[nodiscard]] Rng split() noexcept;

  /// Derives a child stream bound to `id` — deterministic given the parent
  /// state at the time of the call, and distinct per id.
  [[nodiscard]] Rng split_for(std::uint64_t id) const noexcept;

  /// Uniform double in [0, 1).
  [[nodiscard]] double uniform01() noexcept;

  /// Bernoulli trial with success probability `p` (clamped to [0,1]).
  [[nodiscard]] bool bernoulli(double p) noexcept;

  /// Uniform integer in [0, bound). `bound` must be > 0. Uses Lemire's
  /// nearly-divisionless method.
  [[nodiscard]] std::uint64_t uniform_below(std::uint64_t bound) noexcept;

  /// Uniform integer in [lo, hi] inclusive.
  [[nodiscard]] std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) noexcept;

  /// Exponentially distributed value with rate `lambda` (> 0).
  [[nodiscard]] double exponential(double lambda) noexcept;

  /// Geometric: number of Bernoulli(p) failures before the first success.
  [[nodiscard]] std::uint64_t geometric(double p) noexcept;

  /// Poisson-distributed count with mean `lambda` (Knuth for small lambda,
  /// normal approximation above 64 — adequate for workload generation).
  [[nodiscard]] std::uint64_t poisson(double lambda) noexcept;

  /// Zipf-distributed rank in [0, n) with exponent `s` (> 0): rank k is
  /// drawn with probability ∝ 1/(k+1)^s. Rejection-inversion; O(1) per
  /// draw. Used for skewed key-popularity workloads.
  [[nodiscard]] std::uint64_t zipf(std::uint64_t n, double s) noexcept;

  /// Samples `k` distinct values uniformly from [0, n). If k >= n returns
  /// the full range (shuffled). Floyd's algorithm: O(k) expected.
  [[nodiscard]] std::vector<std::uint32_t> sample_without_replacement(
      std::uint32_t n, std::uint32_t k);

  /// Fisher–Yates shuffle of a span in place.
  template <typename T>
  void shuffle(std::span<T> values) noexcept {
    for (std::size_t i = values.size(); i > 1; --i) {
      const auto j = static_cast<std::size_t>(uniform_below(i));
      using std::swap;
      swap(values[i - 1], values[j]);
    }
  }

  /// Picks one element index of a non-empty range of size n.
  [[nodiscard]] std::size_t pick_index(std::size_t n) noexcept {
    return static_cast<std::size_t>(uniform_below(n));
  }

 private:
  std::uint64_t s_[4];
};

}  // namespace updp2p::common
