// Deterministic, splittable random number generation.
//
// Every stochastic component in updp2p (churn, fanout selection, forward
// coin flips, latency models) draws from a generator that is seeded
// explicitly, so a whole experiment is reproducible from a single root
// seed. Two engines share one distribution toolkit (RngOps):
//
//   * Rng — sequential xoshiro256**; fast, state-advancing. Used where draw
//     order is inherently serial (churn transitions, workload generation).
//   * StreamRng — counter-based Philox4x32-10, keyed by
//     (seed, stream, purpose). Draw sequences depend only on the key, never
//     on how many draws other streams made, which decouples randomness from
//     iteration order — the property the sharded round engine needs to stay
//     bit-deterministic at any thread count.
#pragma once

#include <array>
#include <cmath>
#include <cstdint>
#include <span>
#include <unordered_set>
#include <vector>

#include "common/types.hpp"

namespace updp2p::common {

/// splitmix64 step — used for seeding and stream derivation.
/// Reference: Steele, Lea, Flood, "Fast splittable pseudorandom number
/// generators", OOPSLA 2014.
[[nodiscard]] constexpr std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Distribution algorithms over any UniformRandomBitGenerator with a full
/// 64-bit output range. CRTP so Rng and StreamRng produce bit-identical
/// draw sequences from identical raw outputs — golden tests only depend on
/// the engine, not on which class wraps it.
template <typename Derived>
class RngOps {
 public:
  /// Uniform double in [0, 1).
  [[nodiscard]] double uniform01() noexcept {
    // 53 random mantissa bits -> uniform in [0,1).
    return static_cast<double>(self()() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial with success probability `p` (clamped to [0,1]).
  [[nodiscard]] bool bernoulli(double p) noexcept {
    if (p <= 0.0) return false;
    if (p >= 1.0) return true;
    return uniform01() < p;
  }

  /// Uniform integer in [0, bound). `bound` must be > 0. Uses Lemire's
  /// nearly-divisionless method.
  [[nodiscard]] std::uint64_t uniform_below(std::uint64_t bound) noexcept {
    // Lemire's method: multiply-shift with rejection to remove modulo bias.
    std::uint64_t x = self()();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto low = static_cast<std::uint64_t>(m);
    if (low < bound) {
      const std::uint64_t threshold = -bound % bound;
      while (low < threshold) {
        x = self()();
        m = static_cast<__uint128_t>(x) * bound;
        low = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  [[nodiscard]] std::int64_t uniform_int(std::int64_t lo,
                                         std::int64_t hi) noexcept {
    const auto range = static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>(uniform_below(range));
  }

  /// Exponentially distributed value with rate `lambda` (> 0).
  [[nodiscard]] double exponential(double lambda) noexcept {
    // Inverse CDF; guard against log(0).
    double u;
    do {
      u = uniform01();
    } while (u <= 0.0);
    return -std::log(u) / lambda;
  }

  /// Geometric: number of Bernoulli(p) failures before the first success.
  [[nodiscard]] std::uint64_t geometric(double p) noexcept {
    if (p >= 1.0) return 0;
    if (p <= 0.0) return ~std::uint64_t{0};
    double u;
    do {
      u = uniform01();
    } while (u <= 0.0);
    return static_cast<std::uint64_t>(
        std::floor(std::log(u) / std::log1p(-p)));
  }

  /// Poisson-distributed count with mean `lambda` (Knuth for small lambda,
  /// normal approximation above 64 — adequate for workload generation).
  [[nodiscard]] std::uint64_t poisson(double lambda) noexcept {
    if (lambda <= 0.0) return 0;
    if (lambda < 64.0) {
      const double limit = std::exp(-lambda);
      std::uint64_t count = 0;
      double product = uniform01();
      while (product > limit) {
        ++count;
        product *= uniform01();
      }
      return count;
    }
    // Normal approximation with continuity correction for large means.
    const double u1 = std::max(uniform01(), 1e-300);
    const double u2 = uniform01();
    const double normal = std::sqrt(-2.0 * std::log(u1)) *
                          std::cos(2.0 * 3.141592653589793 * u2);
    const double value = lambda + std::sqrt(lambda) * normal + 0.5;
    return value <= 0.0 ? 0 : static_cast<std::uint64_t>(value);
  }

  /// Zipf-distributed rank in [0, n) with exponent `s` (> 0): rank k is
  /// drawn with probability ∝ 1/(k+1)^s. Rejection-inversion; O(1) per
  /// draw. Used for skewed key-popularity workloads.
  [[nodiscard]] std::uint64_t zipf(std::uint64_t n, double s) noexcept {
    if (n <= 1) return 0;
    // Rejection-inversion sampling (Hörmann & Derflinger). H is an
    // antiderivative of the continuous envelope x^-s.
    const double sd = s;
    auto H = [sd](double x) {
      return sd == 1.0 ? std::log(x)
                       : (std::pow(x, 1.0 - sd) - 1.0) / (1.0 - sd);
    };
    auto H_inv = [sd](double u) {
      return sd == 1.0 ? std::exp(u)
                       : std::pow(1.0 + u * (1.0 - sd), 1.0 / (1.0 - sd));
    };
    const double h_x1 = H(1.5) - 1.0;  // shifted so rank 1 is acceptable
    const double h_n = H(static_cast<double>(n) + 0.5);
    for (;;) {
      const double u = h_x1 + uniform01() * (h_n - h_x1);
      const double x = H_inv(u);
      const auto k = static_cast<std::uint64_t>(x + 0.5);
      const double k_d = static_cast<double>(std::max<std::uint64_t>(k, 1));
      if (k >= 1 && k <= n && u >= H(k_d + 0.5) - std::pow(k_d, -sd)) {
        return k - 1;  // 0-based rank
      }
    }
  }

  /// Samples `k` distinct values uniformly from [0, n). If k >= n returns
  /// the full range (shuffled). Floyd's algorithm: O(k) expected.
  [[nodiscard]] std::vector<std::uint32_t> sample_without_replacement(
      std::uint32_t n, std::uint32_t k) {
    std::vector<std::uint32_t> out;
    if (n == 0 || k == 0) return out;
    if (k >= n) {
      out.resize(n);
      for (std::uint32_t i = 0; i < n; ++i) out[i] = i;
      shuffle(std::span<std::uint32_t>(out));
      return out;
    }
    out.reserve(k);
    // Floyd's algorithm: for j in [n-k, n), pick t in [0, j]; insert t or j.
    std::unordered_set<std::uint32_t> chosen;
    chosen.reserve(k * 2);
    for (std::uint32_t j = n - k; j < n; ++j) {
      const auto t = static_cast<std::uint32_t>(uniform_below(j + 1));
      const std::uint32_t pick = chosen.contains(t) ? j : t;
      chosen.insert(pick);
      out.push_back(pick);
    }
    return out;
  }

  /// Fisher–Yates shuffle of a span in place.
  template <typename T>
  void shuffle(std::span<T> values) noexcept {
    for (std::size_t i = values.size(); i > 1; --i) {
      const auto j = static_cast<std::size_t>(uniform_below(i));
      using std::swap;
      swap(values[i - 1], values[j]);
    }
  }

  /// Picks one element index of a non-empty range of size n.
  [[nodiscard]] std::size_t pick_index(std::size_t n) noexcept {
    return static_cast<std::size_t>(uniform_below(n));
  }

 private:
  [[nodiscard]] Derived& self() noexcept {
    return static_cast<Derived&>(*this);
  }
};

/// xoshiro256** PRNG (Blackman & Vigna). Small, fast, passes BigCrush;
/// plenty for simulation workloads. Satisfies UniformRandomBitGenerator.
class Rng : public RngOps<Rng> {
 public:
  using result_type = std::uint64_t;

  /// Seeds the four words of state from `seed` via splitmix64, per the
  /// xoshiro authors' recommendation.
  explicit Rng(std::uint64_t seed = 0x1234567890abcdefULL) noexcept;

  [[nodiscard]] static constexpr result_type min() noexcept { return 0; }
  [[nodiscard]] static constexpr result_type max() noexcept {
    return ~std::uint64_t{0};
  }

  result_type operator()() noexcept;

  /// Derives an independent child generator. The child's seed mixes this
  /// generator's next output, so repeated splits yield distinct streams.
  [[nodiscard]] Rng split() noexcept;

  /// Derives a child stream bound to `id` — deterministic given the parent
  /// state at the time of the call, and distinct per id.
  [[nodiscard]] Rng split_for(std::uint64_t id) const noexcept;

 private:
  std::uint64_t s_[4];
};

/// Philox4x32-10 block cipher (Salmon et al., "Parallel random numbers: as
/// easy as 1, 2, 3", SC'11). Maps a 64-bit key and a 128-bit counter to 128
/// pseudorandom bits; distinct (key, counter) pairs yield independent
/// outputs, so random streams can be *indexed* instead of iterated.
struct PhiloxStream {
  using Block = std::array<std::uint32_t, 4>;

  [[nodiscard]] static constexpr Block block(std::uint32_t key0,
                                             std::uint32_t key1,
                                             Block ctr) noexcept {
    constexpr std::uint32_t kMul0 = 0xD2511F53u;
    constexpr std::uint32_t kMul1 = 0xCD9E8D57u;
    constexpr std::uint32_t kWeyl0 = 0x9E3779B9u;  // golden ratio
    constexpr std::uint32_t kWeyl1 = 0xBB67AE85u;  // sqrt(3) - 1
    for (int round = 0; round < 10; ++round) {
      const auto product0 = static_cast<std::uint64_t>(kMul0) * ctr[0];
      const auto product1 = static_cast<std::uint64_t>(kMul1) * ctr[2];
      ctr = {static_cast<std::uint32_t>(product1 >> 32) ^ ctr[1] ^ key0,
             static_cast<std::uint32_t>(product1),
             static_cast<std::uint32_t>(product0 >> 32) ^ ctr[3] ^ key1,
             static_cast<std::uint32_t>(product0)};
      key0 += kWeyl0;
      key1 += kWeyl1;
    }
    return ctr;
  }
};

/// Counter-based generator over PhiloxStream, keyed by
/// (seed, stream, purpose). The key layout:
///   * the Philox key is derived from `seed` alone — one cipher keying per
///     experiment;
///   * (stream, purpose) select the upper 64 counter bits, so every
///     (seed, stream, purpose) triple owns 2^64 draws that no other triple
///     can collide with;
///   * the draw index forms the lower 64 counter bits.
/// Constructing a StreamRng costs three splitmix64 steps and no block
/// computation — cheap enough to key a fresh stream per (node, round).
/// Satisfies UniformRandomBitGenerator.
class StreamRng : public RngOps<StreamRng> {
 public:
  using result_type = std::uint64_t;

  explicit StreamRng(std::uint64_t seed = 0x1234567890abcdefULL,
                     std::uint64_t stream = 0,
                     std::uint64_t purpose = 0) noexcept {
    std::uint64_t sm = seed;
    const std::uint64_t keyed = splitmix64(sm);
    key0_ = static_cast<std::uint32_t>(keyed);
    key1_ = static_cast<std::uint32_t>(keyed >> 32);
    sm ^= stream * 0x9e3779b97f4a7c15ULL;
    const std::uint64_t stream_mix = splitmix64(sm);
    sm ^= purpose * 0xbf58476d1ce4e5b9ULL;
    const std::uint64_t purpose_mix = splitmix64(sm);
    hi_ = stream_mix ^ purpose_mix;
  }

  [[nodiscard]] static constexpr result_type min() noexcept { return 0; }
  [[nodiscard]] static constexpr result_type max() noexcept {
    return ~std::uint64_t{0};
  }

  result_type operator()() noexcept {
    if (have_buffered_) {
      have_buffered_ = false;
      return buffered_;
    }
    const PhiloxStream::Block out = PhiloxStream::block(
        key0_, key1_,
        {static_cast<std::uint32_t>(ctr_),
         static_cast<std::uint32_t>(ctr_ >> 32),
         static_cast<std::uint32_t>(hi_),
         static_cast<std::uint32_t>(hi_ >> 32)});
    ++ctr_;
    buffered_ = out[2] | (static_cast<std::uint64_t>(out[3]) << 32);
    have_buffered_ = true;
    return out[0] | (static_cast<std::uint64_t>(out[1]) << 32);
  }

  /// Derives an independent child generator (consumes one draw).
  [[nodiscard]] StreamRng split() noexcept { return StreamRng((*this)()); }

  /// Derives a child stream bound to `id` — a pure function of this
  /// stream's key and `id`; does not advance this generator.
  [[nodiscard]] StreamRng split_for(std::uint64_t id) const noexcept {
    return StreamRng(derive_seed(id));
  }

  /// Collapses (key, hi, tag) into a 64-bit seed — pure, non-advancing.
  /// Used to hand deterministic sub-seeds to components that keep their own
  /// sequential engine (e.g. version::LocalWriter's Rng).
  [[nodiscard]] std::uint64_t derive_seed(std::uint64_t tag) const noexcept {
    std::uint64_t sm = (static_cast<std::uint64_t>(key1_) << 32 | key0_) ^
                       hi_ ^ (tag * 0x9e3779b97f4a7c15ULL);
    return splitmix64(sm);
  }

 private:
  std::uint32_t key0_ = 0;
  std::uint32_t key1_ = 0;
  std::uint64_t hi_ = 0;    ///< upper counter half: the stream selector
  std::uint64_t ctr_ = 0;   ///< lower counter half: the draw index
  std::uint64_t buffered_ = 0;
  bool have_buffered_ = false;
};

}  // namespace updp2p::common
