// Hashing utilities: FNV-1a for byte strings, a 128-bit digest used for
// version identifiers, and hash combining for composite keys.
//
// The paper (fn. 1, §3) computes version identifiers by applying a
// cryptographically secure hash to (date/time ++ IP address ++ large random
// number). In the simulator we do not need cryptographic strength — only
// universal uniqueness within a run — so we use a seeded 128-bit mix of the
// same ingredients (peer id, logical timestamp, random nonce).
#pragma once

#include <array>
#include <compare>
#include <cstdint>
#include <iosfwd>
#include <span>
#include <string>
#include <string_view>

namespace updp2p::common {

/// 64-bit FNV-1a over a byte span.
[[nodiscard]] constexpr std::uint64_t fnv1a64(
    std::span<const std::byte> bytes) noexcept {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const std::byte b : bytes) {
    h ^= static_cast<std::uint64_t>(b);
    h *= 0x100000001b3ULL;
  }
  return h;
}

[[nodiscard]] std::uint64_t fnv1a64(std::string_view text) noexcept;

/// boost-style hash combining with 64-bit golden-ratio mixing.
[[nodiscard]] constexpr std::uint64_t hash_combine(std::uint64_t seed,
                                                   std::uint64_t value) noexcept {
  // Murmur-inspired finalizer of the value before mixing into the seed.
  value *= 0xff51afd7ed558ccdULL;
  value ^= value >> 33;
  return seed ^ (value + 0x9e3779b97f4a7c15ULL + (seed << 6) + (seed >> 2));
}

/// A 128-bit digest. Used as the representation of version identifiers.
struct Digest128 {
  std::uint64_t hi = 0;
  std::uint64_t lo = 0;

  friend constexpr auto operator<=>(const Digest128&,
                                    const Digest128&) noexcept = default;

  [[nodiscard]] std::string to_hex() const;
};

std::ostream& operator<<(std::ostream& os, const Digest128& digest);

/// Deterministic 128-bit mix of arbitrary 64-bit words.
[[nodiscard]] Digest128 digest128(std::span<const std::uint64_t> words) noexcept;

}  // namespace updp2p::common

template <>
struct std::hash<updp2p::common::Digest128> {
  std::size_t operator()(const updp2p::common::Digest128& d) const noexcept {
    return static_cast<std::size_t>(d.hi ^ (d.lo * 0x9e3779b97f4a7c15ULL));
  }
};
