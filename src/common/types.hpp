// Strong identifier and scalar types shared by every updp2p module.
//
// The paper's model is expressed over peers, replicas, push rounds and
// fractions of populations. Mixing those up silently (e.g. passing a round
// number where a peer index is expected) is the classic source of simulator
// bugs, so each concept gets its own vocabulary type.
#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <limits>
#include <string>

namespace updp2p::common {

/// CRTP-free strong integer wrapper. `Tag` makes each instantiation a
/// distinct type; `Rep` is the underlying representation.
template <typename Tag, typename Rep = std::uint64_t>
class StrongId {
 public:
  using rep_type = Rep;

  constexpr StrongId() noexcept = default;
  constexpr explicit StrongId(Rep value) noexcept : value_(value) {}

  [[nodiscard]] constexpr Rep value() const noexcept { return value_; }

  friend constexpr auto operator<=>(StrongId, StrongId) noexcept = default;

  /// Sentinel distinct from every id produced by normal allocation.
  [[nodiscard]] static constexpr StrongId invalid() noexcept {
    return StrongId(std::numeric_limits<Rep>::max());
  }

  [[nodiscard]] constexpr bool is_valid() const noexcept {
    return *this != invalid();
  }

 private:
  Rep value_ = 0;
};

struct PeerIdTag {};
struct UpdateIdTag {};

/// Identifies one peer/replica in a simulated population. Dense (0..N-1)
/// so containers indexed by peer are plain vectors.
using PeerId = StrongId<PeerIdTag, std::uint32_t>;

/// Identifies one update (rumor) being propagated.
using UpdateId = StrongId<UpdateIdTag, std::uint64_t>;

/// Push-round counter `t` from the paper's analysis (Table 1).
using Round = std::uint32_t;

/// Continuous simulation time used by the event-driven engine (seconds).
using SimTime = double;

template <typename Tag, typename Rep>
std::ostream& operator<<(std::ostream& os, StrongId<Tag, Rep> id);

std::ostream& operator<<(std::ostream& os, PeerId id);
std::ostream& operator<<(std::ostream& os, UpdateId id);

}  // namespace updp2p::common

template <>
struct std::hash<updp2p::common::PeerId> {
  std::size_t operator()(updp2p::common::PeerId id) const noexcept {
    return std::hash<updp2p::common::PeerId::rep_type>{}(id.value());
  }
};

template <>
struct std::hash<updp2p::common::UpdateId> {
  std::size_t operator()(updp2p::common::UpdateId id) const noexcept {
    return std::hash<updp2p::common::UpdateId::rep_type>{}(id.value());
  }
};
