#include "common/chunked_peer_set.hpp"

namespace updp2p::common {

namespace {

std::size_t varint_len(std::uint64_t value) noexcept {
  std::size_t len = 1;
  while (value >= 0x80) {
    value >>= 7;
    ++len;
  }
  return len;
}

}  // namespace

ChunkedPeerSet::Chunk& ChunkedPeerSet::chunk_for(std::uint16_t key) {
  const auto it = std::lower_bound(
      chunks_.begin(), chunks_.end(), key,
      [](const Chunk& chunk, std::uint16_t k) { return chunk.key < k; });
  if (it != chunks_.end() && it->key == key) return *it;
  const auto index = static_cast<std::size_t>(it - chunks_.begin());
  chunks_.insert(it, take_chunk(key));
  return chunks_[index];
}

ChunkedPeerSet::Chunk ChunkedPeerSet::take_chunk(std::uint16_t key) {
  Chunk chunk;
  if (!spare_.empty()) {
    chunk = std::move(spare_.back());
    spare_.pop_back();
  }
  chunk.key = key;
  chunk.cardinality = 0;
  chunk.lows.clear();
  chunk.bits.clear();
  return chunk;
}

ChunkedPeerSet::Chunk ChunkedPeerSet::copy_chunk(const Chunk& source) {
  Chunk chunk = take_chunk(source.key);
  chunk.cardinality = source.cardinality;
  chunk.lows.assign(source.lows.begin(), source.lows.end());
  chunk.bits.assign(source.bits.begin(), source.bits.end());
  return chunk;
}

void ChunkedPeerSet::promote(Chunk& chunk) {
  chunk.bits.assign(kBitmapWords, 0);
  for (const std::uint16_t low : chunk.lows) {
    chunk.bits[low >> 6] |= std::uint64_t{1} << (low & 63);
  }
  chunk.lows.clear();
}

void ChunkedPeerSet::demote(Chunk& chunk) {
  chunk.lows.clear();
  chunk.lows.reserve(chunk.cardinality);
  for (std::size_t w = 0; w < kBitmapWords; ++w) {
    std::uint64_t word = chunk.bits[w];
    while (word != 0) {
      chunk.lows.push_back(static_cast<std::uint16_t>(
          w * 64 + static_cast<std::size_t>(std::countr_zero(word))));
      word &= word - 1;
    }
  }
  chunk.bits.clear();
}

void ChunkedPeerSet::drop_empty_chunks() {
  std::size_t keep = 0;
  for (std::size_t i = 0; i < chunks_.size(); ++i) {
    if (chunks_[i].cardinality == 0) {
      Chunk& dead = chunks_[i];
      dead.lows.clear();
      dead.bits.clear();
      spare_.push_back(std::move(dead));
    } else {
      if (keep != i) chunks_[keep] = std::move(chunks_[i]);
      ++keep;
    }
  }
  chunks_.resize(keep);
}

PeerId ChunkedPeerSet::select_rank(std::size_t rank) const {
  UPDP2P_ENSURE(rank < size_, "select_rank out of range");
  for (const Chunk& chunk : chunks_) {
    if (rank >= chunk.cardinality) {
      rank -= chunk.cardinality;
      continue;
    }
    const std::uint32_t base = std::uint32_t{chunk.key} << kChunkBits;
    if (!chunk.is_bitmap()) return PeerId(base | chunk.lows[rank]);
    for (std::size_t w = 0; w < kBitmapWords; ++w) {
      const auto here =
          static_cast<std::size_t>(std::popcount(chunk.bits[w]));
      if (rank >= here) {
        rank -= here;
        continue;
      }
      std::uint64_t word = chunk.bits[w];
      while (rank-- > 0) word &= word - 1;  // clear the lowest `rank` bits
      return PeerId(base + static_cast<std::uint32_t>(w * 64) +
                    static_cast<std::uint32_t>(std::countr_zero(word)));
    }
  }
  UPDP2P_ENSURE(false, "chunk cardinalities disagree with size()");
  return PeerId::invalid();
}

std::size_t ChunkedPeerSet::rank_of(PeerId peer) const noexcept {
  if (!peer.is_valid()) return size_;
  const auto key = static_cast<std::uint16_t>(peer.value() >> kChunkBits);
  const auto low = static_cast<std::uint16_t>(peer.value());
  std::size_t rank = 0;
  for (const Chunk& chunk : chunks_) {
    if (chunk.key > key) break;
    if (chunk.key < key) {
      rank += chunk.cardinality;
      continue;
    }
    if (chunk.is_bitmap()) {
      for (std::size_t w = 0; w < static_cast<std::size_t>(low >> 6); ++w) {
        rank += static_cast<std::size_t>(std::popcount(chunk.bits[w]));
      }
      const std::uint64_t below = (std::uint64_t{1} << (low & 63)) - 1;
      rank += static_cast<std::size_t>(
          std::popcount(chunk.bits[low >> 6] & below));
    } else {
      rank += static_cast<std::size_t>(
          std::lower_bound(chunk.lows.begin(), chunk.lows.end(), low) -
          chunk.lows.begin());
    }
    break;
  }
  return rank;
}

void ChunkedPeerSet::subtract(const ChunkedPeerSet& other) {
  if (empty() || other.empty()) return;
  std::size_t theirs_index = 0;
  for (Chunk& ours : chunks_) {
    while (theirs_index < other.chunks_.size() &&
           other.chunks_[theirs_index].key < ours.key) {
      ++theirs_index;
    }
    if (theirs_index == other.chunks_.size()) break;
    const Chunk& theirs = other.chunks_[theirs_index];
    if (theirs.key != ours.key) continue;

    const std::uint32_t before = ours.cardinality;
    if (ours.is_bitmap() && theirs.is_bitmap()) {
      // Word-parallel AND-NOT: 64 ids per instruction.
      std::uint32_t remaining = 0;
      for (std::size_t w = 0; w < kBitmapWords; ++w) {
        ours.bits[w] &= ~theirs.bits[w];
        remaining += static_cast<std::uint32_t>(std::popcount(ours.bits[w]));
      }
      ours.cardinality = remaining;
    } else if (ours.is_bitmap()) {
      for (const std::uint16_t low : theirs.lows) {
        std::uint64_t& word = ours.bits[low >> 6];
        const std::uint64_t mask = std::uint64_t{1} << (low & 63);
        if ((word & mask) != 0) {
          word &= ~mask;
          --ours.cardinality;
        }
      }
    } else if (theirs.is_bitmap()) {
      // Gallop-free: each of our (few) lows probes their bitmap in O(1).
      std::size_t keep = 0;
      for (const std::uint16_t low : ours.lows) {
        if (((theirs.bits[low >> 6] >> (low & 63)) & 1) == 0) {
          ours.lows[keep++] = low;
        }
      }
      ours.lows.resize(keep);
      ours.cardinality = static_cast<std::uint32_t>(keep);
    } else if (ours.lows.size() * 16 < theirs.lows.size()) {
      // Galloping probes: our side is much smaller, so binary-search each
      // of our elements in theirs instead of walking both linearly.
      std::size_t keep = 0;
      for (const std::uint16_t low : ours.lows) {
        if (!std::binary_search(theirs.lows.begin(), theirs.lows.end(),
                                low)) {
          ours.lows[keep++] = low;
        }
      }
      ours.lows.resize(keep);
      ours.cardinality = static_cast<std::uint32_t>(keep);
    } else {
      // Linear two-pointer difference, compacting in place.
      std::size_t keep = 0;
      std::size_t j = 0;
      for (const std::uint16_t low : ours.lows) {
        while (j < theirs.lows.size() && theirs.lows[j] < low) ++j;
        if (j == theirs.lows.size() || theirs.lows[j] != low) {
          ours.lows[keep++] = low;
        }
      }
      ours.lows.resize(keep);
      ours.cardinality = static_cast<std::uint32_t>(keep);
    }
    size_ -= before - ours.cardinality;
    canonicalize(ours);
  }
  drop_empty_chunks();
}

void ChunkedPeerSet::keep_lowest(std::size_t cap) {
  if (cap >= size_) return;
  if (cap == 0) {
    clear();
    return;
  }
  std::size_t kept = 0;
  std::size_t boundary = chunks_.size();
  for (std::size_t i = 0; i < chunks_.size(); ++i) {
    Chunk& chunk = chunks_[i];
    if (kept + chunk.cardinality <= cap) {
      kept += chunk.cardinality;
      if (kept == cap) {
        boundary = i + 1;
        break;
      }
      continue;
    }
    // Partial chunk: keep the first (cap - kept) ids.
    const auto take = static_cast<std::uint32_t>(cap - kept);
    if (chunk.is_bitmap()) {
      std::uint32_t seen = 0;
      for (std::size_t w = 0; w < kBitmapWords; ++w) {
        const auto bits_here =
            static_cast<std::uint32_t>(std::popcount(chunk.bits[w]));
        if (seen + bits_here <= take) {
          seen += bits_here;
          continue;
        }
        // Clear all but the lowest (take - seen) bits of this word...
        std::uint64_t word = chunk.bits[w];
        for (std::uint32_t b = take - seen; b > 0; --b) word &= word - 1;
        chunk.bits[w] ^= word;
        // ...and every later word entirely.
        std::fill(chunk.bits.begin() + static_cast<std::ptrdiff_t>(w) + 1,
                  chunk.bits.end(), 0);
        break;
      }
    } else {
      chunk.lows.resize(take);
    }
    chunk.cardinality = take;
    canonicalize(chunk);
    boundary = i + 1;
    break;
  }
  for (std::size_t i = boundary; i < chunks_.size(); ++i) {
    chunks_[i].lows.clear();
    chunks_[i].bits.clear();
    chunks_[i].cardinality = 0;
    spare_.push_back(std::move(chunks_[i]));
  }
  chunks_.resize(boundary);
  size_ = cap;
}

void ChunkedPeerSet::keep_highest(std::size_t cap) {
  if (cap >= size_) return;
  if (cap == 0) {
    clear();
    return;
  }
  // Walk from the top, counting how many ids survive per chunk.
  std::size_t kept = 0;
  std::size_t first = 0;
  for (std::size_t i = chunks_.size(); i-- > 0;) {
    Chunk& chunk = chunks_[i];
    if (kept + chunk.cardinality <= cap) {
      kept += chunk.cardinality;
      if (kept == cap) {
        first = i;
        break;
      }
      continue;
    }
    // Partial chunk: drop the first (cardinality - (cap - kept)) ids.
    const auto take = static_cast<std::uint32_t>(cap - kept);
    const std::uint32_t drop = chunk.cardinality - take;
    if (chunk.is_bitmap()) {
      std::uint32_t dropped = 0;
      for (std::size_t w = 0; w < kBitmapWords; ++w) {
        const auto bits_here =
            static_cast<std::uint32_t>(std::popcount(chunk.bits[w]));
        if (dropped + bits_here <= drop) {
          dropped += bits_here;
          chunk.bits[w] = 0;
          continue;
        }
        std::uint64_t word = chunk.bits[w];
        for (std::uint32_t b = drop - dropped; b > 0; --b) word &= word - 1;
        chunk.bits[w] = word;
        break;
      }
    } else {
      chunk.lows.erase(chunk.lows.begin(),
                       chunk.lows.begin() + static_cast<std::ptrdiff_t>(drop));
    }
    chunk.cardinality = take;
    canonicalize(chunk);
    first = i;
    break;
  }
  for (std::size_t i = 0; i < first; ++i) {
    chunks_[i].lows.clear();
    chunks_[i].bits.clear();
    chunks_[i].cardinality = 0;
    spare_.push_back(std::move(chunks_[i]));
  }
  chunks_.erase(chunks_.begin(),
                chunks_.begin() + static_cast<std::ptrdiff_t>(first));
  size_ = cap;
}

void ChunkedPeerSet::keep_ranks(const std::vector<std::uint32_t>& ranks) {
  // One ascending sweep: visit each chunk's ids in order, keep those whose
  // global rank is next in the (sorted) rank list, rebuilding each chunk in
  // place. The survivors stay within their original chunk, so no cross-
  // chunk moves happen and nothing materialises outside the chunk storage.
  std::size_t next = 0;  // index into ranks
  std::uint32_t rank = 0;
  for (Chunk& chunk : chunks_) {
    if (next == ranks.size() ||
        ranks[next] >= rank + chunk.cardinality) {
      // No survivor in this chunk.
      rank += chunk.cardinality;
      chunk.cardinality = 0;
      chunk.lows.clear();
      chunk.bits.clear();
      continue;
    }
    const std::uint32_t chunk_base_rank = rank;
    merge_scratch_.clear();
    const auto visit = [&](std::uint16_t low) {
      if (next < ranks.size() && ranks[next] == rank) {
        merge_scratch_.push_back(low);
        ++next;
      }
      ++rank;
    };
    if (chunk.is_bitmap()) {
      for (std::size_t w = 0; w < kBitmapWords; ++w) {
        std::uint64_t word = chunk.bits[w];
        while (word != 0) {
          visit(static_cast<std::uint16_t>(
              w * 64 + static_cast<std::size_t>(std::countr_zero(word))));
          word &= word - 1;
        }
      }
    } else {
      for (const std::uint16_t low : chunk.lows) visit(low);
    }
    rank = chunk_base_rank + chunk.cardinality;
    chunk.cardinality = static_cast<std::uint32_t>(merge_scratch_.size());
    chunk.bits.clear();
    chunk.lows.swap(merge_scratch_);
    canonicalize(chunk);
  }
  drop_empty_chunks();
  size_ = ranks.size();
}

std::size_t ChunkedPeerSet::wire_encoded_bytes() const noexcept {
  std::size_t total = varint_len(chunks_.size());
  for (const Chunk& chunk : chunks_) {
    total += varint_len(chunk.key) + 1 /*form byte*/ +
             varint_len(chunk.cardinality);
    if (chunk.is_bitmap()) {
      total += kBitmapWords * sizeof(std::uint64_t);
    } else {
      std::uint16_t prev = 0;
      bool first = true;
      for (const std::uint16_t low : chunk.lows) {
        // First low verbatim, then gap-1 deltas (lows strictly increase).
        total += varint_len(first ? low
                                  : static_cast<std::uint64_t>(low - prev - 1));
        prev = low;
        first = false;
      }
    }
  }
  return total;
}

bool ChunkedPeerSet::append_array_chunk(std::uint16_t key,
                                        std::span<const std::uint16_t> lows) {
  if (lows.empty() || lows.size() > kArrayChunkMax) return false;
  if (!chunks_.empty() && chunks_.back().key >= key) return false;
  for (std::size_t i = 1; i < lows.size(); ++i) {
    if (lows[i] <= lows[i - 1]) return false;
  }
  Chunk chunk = take_chunk(key);
  chunk.lows.assign(lows.begin(), lows.end());
  chunk.cardinality = static_cast<std::uint32_t>(lows.size());
  size_ += chunk.cardinality;
  chunks_.push_back(std::move(chunk));
  return true;
}

bool ChunkedPeerSet::append_bitmap_chunk(std::uint16_t key,
                                         std::span<const std::uint64_t> words) {
  if (words.size() != kBitmapWords) return false;
  if (!chunks_.empty() && chunks_.back().key >= key) return false;
  std::uint32_t cardinality = 0;
  for (const std::uint64_t word : words) {
    cardinality += static_cast<std::uint32_t>(std::popcount(word));
  }
  // Canonical form: a bitmap chunk must be denser than any array chunk.
  if (cardinality <= kArrayChunkMax) return false;
  Chunk chunk = take_chunk(key);
  chunk.bits.assign(words.begin(), words.end());
  chunk.cardinality = cardinality;
  size_ += cardinality;
  chunks_.push_back(std::move(chunk));
  return true;
}

}  // namespace updp2p::common
