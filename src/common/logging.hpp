// Minimal leveled logger. Simulation hot loops must stay allocation-free,
// so log statements below the active level cost a single branch.
#pragma once

#include <iosfwd>
#include <sstream>
#include <string_view>

namespace updp2p::common {

enum class LogLevel : int { kTrace = 0, kDebug, kInfo, kWarn, kError, kOff };

/// Process-wide log configuration. Not thread-safe by design: the simulator
/// is single-threaded and benches set the level once at startup.
class Logger {
 public:
  static void set_level(LogLevel level) noexcept { level_ = level; }
  [[nodiscard]] static LogLevel level() noexcept { return level_; }
  [[nodiscard]] static bool enabled(LogLevel level) noexcept {
    return level >= level_;
  }
  /// Redirects output (default: std::clog). Pass nullptr to restore default.
  static void set_sink(std::ostream* sink) noexcept { sink_ = sink; }

  static void write(LogLevel level, std::string_view component,
                    std::string_view message);

 private:
  static LogLevel level_;
  static std::ostream* sink_;
};

namespace detail {
class LogLine {
 public:
  LogLine(LogLevel level, std::string_view component)
      : level_(level), component_(component) {}
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;
  ~LogLine() { Logger::write(level_, component_, stream_.str()); }

  template <typename T>
  LogLine& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::string_view component_;
  std::ostringstream stream_;
};
}  // namespace detail

}  // namespace updp2p::common

#define UPDP2P_LOG(level, component)                                  \
  if (!::updp2p::common::Logger::enabled(level)) {                    \
  } else                                                              \
    ::updp2p::common::detail::LogLine(level, component)

#define UPDP2P_LOG_DEBUG(component) \
  UPDP2P_LOG(::updp2p::common::LogLevel::kDebug, component)
#define UPDP2P_LOG_INFO(component) \
  UPDP2P_LOG(::updp2p::common::LogLevel::kInfo, component)
#define UPDP2P_LOG_WARN(component) \
  UPDP2P_LOG(::updp2p::common::LogLevel::kWarn, component)
#define UPDP2P_LOG_ERROR(component) \
  UPDP2P_LOG(::updp2p::common::LogLevel::kError, component)
