// Streaming statistics and simple series containers used by the simulator's
// metrics pipeline and the benchmark harness.
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace updp2p::common {

/// Welford streaming mean/variance plus min/max. O(1) memory.
class RunningStats {
 public:
  void add(double x) noexcept;
  void merge(const RunningStats& other) noexcept;
  void reset() noexcept { *this = RunningStats{}; }

  [[nodiscard]] std::size_t count() const noexcept { return count_; }
  [[nodiscard]] bool empty() const noexcept { return count_ == 0; }
  [[nodiscard]] double mean() const noexcept { return count_ ? mean_ : 0.0; }
  /// Unbiased sample variance (0 for fewer than two samples).
  [[nodiscard]] double variance() const noexcept;
  [[nodiscard]] double stddev() const noexcept;
  [[nodiscard]] double min() const noexcept { return count_ ? min_ : 0.0; }
  [[nodiscard]] double max() const noexcept { return count_ ? max_ : 0.0; }
  [[nodiscard]] double sum() const noexcept { return mean_ * static_cast<double>(count_); }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Fixed-bucket histogram over [lo, hi) with overflow/underflow buckets.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t buckets);

  void add(double x) noexcept;
  [[nodiscard]] std::size_t total() const noexcept { return total_; }
  [[nodiscard]] std::size_t bucket_count() const noexcept { return counts_.size(); }
  [[nodiscard]] std::size_t bucket(std::size_t i) const { return counts_.at(i); }
  [[nodiscard]] std::size_t underflow() const noexcept { return underflow_; }
  [[nodiscard]] std::size_t overflow() const noexcept { return overflow_; }
  /// Approximate quantile by linear interpolation within the hit bucket.
  [[nodiscard]] double quantile(double q) const noexcept;

 private:
  double lo_;
  double hi_;
  double width_;
  std::vector<std::size_t> counts_;
  std::size_t underflow_ = 0;
  std::size_t overflow_ = 0;
  std::size_t total_ = 0;
};

/// Exact percentile of a copied sample set (for small vectors in tests).
[[nodiscard]] double percentile(std::vector<double> values, double q) noexcept;

/// One (x, y) trajectory — e.g. messages-per-peer vs fraction aware — as
/// plotted in the paper's figures.
struct Series {
  std::string label;
  std::vector<double> x;
  std::vector<double> y;

  void push(double xv, double yv) {
    x.push_back(xv);
    y.push_back(yv);
  }
  [[nodiscard]] std::size_t size() const noexcept { return x.size(); }
  [[nodiscard]] bool empty() const noexcept { return x.empty(); }
  [[nodiscard]] double final_x() const { return x.back(); }
  [[nodiscard]] double final_y() const { return y.back(); }
};

}  // namespace updp2p::common
