#include "common/hash.hpp"

#include <cstdio>
#include <ostream>

namespace updp2p::common {

std::uint64_t fnv1a64(std::string_view text) noexcept {
  return fnv1a64(std::as_bytes(std::span(text.data(), text.size())));
}

std::string Digest128::to_hex() const {
  char buffer[33];
  std::snprintf(buffer, sizeof buffer, "%016llx%016llx",
                static_cast<unsigned long long>(hi),
                static_cast<unsigned long long>(lo));
  return std::string(buffer);
}

std::ostream& operator<<(std::ostream& os, const Digest128& digest) {
  return os << digest.to_hex();
}

Digest128 digest128(std::span<const std::uint64_t> words) noexcept {
  // Two independent FNV-ish accumulation lanes with distinct primes, then a
  // final avalanche per lane. Not cryptographic; collision probability for
  // simulator-scale id counts (~2^30) is negligible at 128 bits.
  std::uint64_t hi = 0x6c62272e07bb0142ULL;
  std::uint64_t lo = 0xcbf29ce484222325ULL;
  for (const std::uint64_t w : words) {
    hi = hash_combine(hi, w);
    lo = hash_combine(lo ^ 0x94d049bb133111ebULL, w + 0x9e3779b97f4a7c15ULL);
  }
  auto avalanche = [](std::uint64_t x) {
    x ^= x >> 33;
    x *= 0xff51afd7ed558ccdULL;
    x ^= x >> 33;
    x *= 0xc4ceb9fe1a85ec53ULL;
    x ^= x >> 33;
    return x;
  };
  return Digest128{avalanche(hi), avalanche(lo)};
}

}  // namespace updp2p::common
