// CSV export for experiment results, so bench output can be fed straight
// into plotting tools (`bench_binary --csv out/` writes one file per table).
//
// RFC-4180-ish quoting: fields containing comma, quote or newline are
// quoted, embedded quotes doubled.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "common/stats.hpp"

namespace updp2p::common {

class CsvWriter {
 public:
  explicit CsvWriter(std::ostream& out) : out_(out) {}

  CsvWriter& row(const std::vector<std::string>& cells);

  /// Convenience: emits a Series as rows of (label, x, y).
  CsvWriter& series(const Series& series, int precision = 6);

  [[nodiscard]] static std::string escape(const std::string& field);

 private:
  std::ostream& out_;
};

/// Writes `content` rows to `<directory>/<name>.csv`; returns false (and
/// leaves no partial file behind) when the directory is not writable.
bool write_csv_file(const std::string& directory, const std::string& name,
                    const std::vector<std::vector<std::string>>& rows);

}  // namespace updp2p::common
