#include "common/logging.hpp"

#include <iostream>

namespace updp2p::common {

LogLevel Logger::level_ = LogLevel::kWarn;
std::ostream* Logger::sink_ = nullptr;

namespace {
constexpr std::string_view level_name(LogLevel level) noexcept {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF  ";
  }
  return "?????";
}
}  // namespace

void Logger::write(LogLevel level, std::string_view component,
                   std::string_view message) {
  std::ostream& out = sink_ ? *sink_ : std::clog;
  out << '[' << level_name(level) << "] [" << component << "] " << message
      << '\n';
}

}  // namespace updp2p::common
