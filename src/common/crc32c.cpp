#include "common/crc32c.hpp"

#include <array>

namespace updp2p::common {

namespace {

/// Reflected CRC-32C polynomial.
constexpr std::uint32_t kPoly = 0x82F63B78u;

/// Slice-by-8 tables, built at compile time. table[0] is the classic
/// byte-at-a-time table; table[k][b] extends it by k extra zero bytes, so
/// eight lookups fold 8 input bytes into the CRC at once.
struct Tables {
  std::array<std::array<std::uint32_t, 256>, 8> t{};
};

constexpr Tables build_tables() {
  Tables tables;
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc & 1u) != 0 ? (crc >> 1) ^ kPoly : crc >> 1;
    }
    tables.t[0][i] = crc;
  }
  for (std::size_t k = 1; k < 8; ++k) {
    for (std::uint32_t i = 0; i < 256; ++i) {
      const std::uint32_t prev = tables.t[k - 1][i];
      tables.t[k][i] = (prev >> 8) ^ tables.t[0][prev & 0xFFu];
    }
  }
  return tables;
}

constexpr Tables kTables = build_tables();

}  // namespace

std::uint32_t crc32c(std::span<const std::byte> bytes,
                     std::uint32_t seed) noexcept {
  const auto& t = kTables.t;
  std::uint32_t crc = ~seed;
  std::size_t i = 0;
  // Head: align the slice-by-8 loop is unnecessary (unaligned 8-byte
  // chunks are read byte-wise below), but process 8 bytes per iteration.
  for (; i + 8 <= bytes.size(); i += 8) {
    const auto b = [&bytes, i](std::size_t k) {
      return static_cast<std::uint32_t>(bytes[i + k]);
    };
    const std::uint32_t low = crc ^ (b(0) | (b(1) << 8) | (b(2) << 16) |
                                     (b(3) << 24));
    crc = t[7][low & 0xFFu] ^ t[6][(low >> 8) & 0xFFu] ^
          t[5][(low >> 16) & 0xFFu] ^ t[4][low >> 24] ^
          t[3][b(4)] ^ t[2][b(5)] ^ t[1][b(6)] ^ t[0][b(7)];
  }
  for (; i < bytes.size(); ++i) {
    crc = (crc >> 8) ^
          t[0][(crc ^ static_cast<std::uint32_t>(bytes[i])) & 0xFFu];
  }
  return ~crc;
}

}  // namespace updp2p::common
