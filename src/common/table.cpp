#include "common/table.hpp"

#include <algorithm>
#include <cstdio>
#include <ostream>
#include <sstream>

#include "common/ensure.hpp"

namespace updp2p::common {

std::string format_double(double value, int precision) {
  char buffer[64];
  std::snprintf(buffer, sizeof buffer, "%.*f", precision, value);
  return std::string(buffer);
}

std::string format_trajectory(const std::vector<double>& x,
                              const std::vector<double>& y, int precision) {
  UPDP2P_ENSURE(x.size() == y.size(), "trajectory arrays must align");
  std::ostringstream out;
  for (std::size_t i = 0; i < x.size(); ++i) {
    if (i > 0) out << "  ";
    out << format_double(x[i], precision) << "->"
        << format_double(y[i], precision);
  }
  return out.str();
}

TextTable& TextTable::header(std::vector<std::string> columns) {
  header_ = std::move(columns);
  return *this;
}

TextTable& TextTable::row() {
  rows_.emplace_back();
  return *this;
}

TextTable& TextTable::cell(std::string value) {
  UPDP2P_ENSURE(!rows_.empty(), "call row() before cell()");
  rows_.back().push_back(std::move(value));
  return *this;
}

TextTable& TextTable::cell(double value, int precision) {
  return cell(format_double(value, precision));
}

TextTable& TextTable::cell(std::size_t value) {
  return cell(std::to_string(value));
}

TextTable& TextTable::cell(long long value) { return cell(std::to_string(value)); }

void TextTable::print(std::ostream& os) const {
  std::vector<std::size_t> widths(header_.size(), 0);
  auto widen = [&widths](const std::vector<std::string>& cells) {
    if (cells.size() > widths.size()) widths.resize(cells.size(), 0);
    for (std::size_t i = 0; i < cells.size(); ++i) {
      widths[i] = std::max(widths[i], cells[i].size());
    }
  };
  widen(header_);
  for (const auto& r : rows_) widen(r);

  os << "== " << title_ << " ==\n";
  auto print_row = [&os, &widths](const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < widths.size(); ++i) {
      const std::string& text = i < cells.size() ? cells[i] : std::string{};
      os << "  " << text;
      os << std::string(widths[i] - std::min(widths[i], text.size()), ' ');
    }
    os << '\n';
  };
  if (!header_.empty()) {
    print_row(header_);
    std::size_t total = 0;
    for (const std::size_t w : widths) total += w + 2;
    os << "  " << std::string(total > 2 ? total - 2 : 0, '-') << '\n';
  }
  for (const auto& r : rows_) print_row(r);
}

}  // namespace updp2p::common
