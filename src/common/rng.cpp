#include "common/rng.hpp"

#include <bit>

namespace updp2p::common {

namespace {
constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return std::rotl(x, k);
}
}  // namespace

Rng::Rng(std::uint64_t seed) noexcept {
  std::uint64_t sm = seed;
  for (auto& word : s_) word = splitmix64(sm);
  // xoshiro must not start from the all-zero state; splitmix64 cannot
  // produce four consecutive zeros, but keep the guard for clarity.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

Rng::result_type Rng::operator()() noexcept {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

Rng Rng::split() noexcept { return Rng((*this)()); }

Rng Rng::split_for(std::uint64_t id) const noexcept {
  // Mix current state with the id without advancing this generator, so the
  // mapping id -> stream is stable for a frozen parent.
  std::uint64_t sm = s_[0] ^ rotl(s_[3], 13) ^ (id * 0x9e3779b97f4a7c15ULL);
  return Rng(splitmix64(sm));
}

}  // namespace updp2p::common
