#include "common/rng.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <unordered_set>

namespace updp2p::common {

namespace {
constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return std::rotl(x, k);
}
}  // namespace

Rng::Rng(std::uint64_t seed) noexcept {
  std::uint64_t sm = seed;
  for (auto& word : s_) word = splitmix64(sm);
  // xoshiro must not start from the all-zero state; splitmix64 cannot
  // produce four consecutive zeros, but keep the guard for clarity.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

Rng::result_type Rng::operator()() noexcept {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

Rng Rng::split() noexcept { return Rng((*this)()); }

Rng Rng::split_for(std::uint64_t id) const noexcept {
  // Mix current state with the id without advancing this generator, so the
  // mapping id -> stream is stable for a frozen parent.
  std::uint64_t sm = s_[0] ^ rotl(s_[3], 13) ^ (id * 0x9e3779b97f4a7c15ULL);
  return Rng(splitmix64(sm));
}

double Rng::uniform01() noexcept {
  // 53 random mantissa bits -> uniform in [0,1).
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

bool Rng::bernoulli(double p) noexcept {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform01() < p;
}

std::uint64_t Rng::uniform_below(std::uint64_t bound) noexcept {
  // Lemire's method: multiply-shift with rejection to remove modulo bias.
  std::uint64_t x = (*this)();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto low = static_cast<std::uint64_t>(m);
  if (low < bound) {
    const std::uint64_t threshold = -bound % bound;
    while (low < threshold) {
      x = (*this)();
      m = static_cast<__uint128_t>(x) * bound;
      low = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) noexcept {
  const auto range = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(uniform_below(range));
}

double Rng::exponential(double lambda) noexcept {
  // Inverse CDF; guard against log(0).
  double u;
  do {
    u = uniform01();
  } while (u <= 0.0);
  return -std::log(u) / lambda;
}

std::uint64_t Rng::geometric(double p) noexcept {
  if (p >= 1.0) return 0;
  if (p <= 0.0) return ~std::uint64_t{0};
  double u;
  do {
    u = uniform01();
  } while (u <= 0.0);
  return static_cast<std::uint64_t>(std::floor(std::log(u) / std::log1p(-p)));
}

std::uint64_t Rng::poisson(double lambda) noexcept {
  if (lambda <= 0.0) return 0;
  if (lambda < 64.0) {
    const double limit = std::exp(-lambda);
    std::uint64_t count = 0;
    double product = uniform01();
    while (product > limit) {
      ++count;
      product *= uniform01();
    }
    return count;
  }
  // Normal approximation with continuity correction for large means.
  const double u1 = std::max(uniform01(), 1e-300);
  const double u2 = uniform01();
  const double normal =
      std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * 3.141592653589793 * u2);
  const double value = lambda + std::sqrt(lambda) * normal + 0.5;
  return value <= 0.0 ? 0 : static_cast<std::uint64_t>(value);
}

std::uint64_t Rng::zipf(std::uint64_t n, double s) noexcept {
  if (n <= 1) return 0;
  // Rejection-inversion sampling (Hörmann & Derflinger). H is an
  // antiderivative of the continuous envelope x^-s.
  const double sd = s;
  auto H = [sd](double x) {
    return sd == 1.0 ? std::log(x) : (std::pow(x, 1.0 - sd) - 1.0) / (1.0 - sd);
  };
  auto H_inv = [sd](double u) {
    return sd == 1.0 ? std::exp(u)
                     : std::pow(1.0 + u * (1.0 - sd), 1.0 / (1.0 - sd));
  };
  const double h_x1 = H(1.5) - 1.0;  // shifted so rank 1 is acceptable
  const double h_n = H(static_cast<double>(n) + 0.5);
  for (;;) {
    const double u = h_x1 + uniform01() * (h_n - h_x1);
    const double x = H_inv(u);
    const auto k = static_cast<std::uint64_t>(x + 0.5);
    const double k_d = static_cast<double>(std::max<std::uint64_t>(k, 1));
    if (k >= 1 && k <= n &&
        u >= H(k_d + 0.5) - std::pow(k_d, -sd)) {
      return k - 1;  // 0-based rank
    }
  }
}

std::vector<std::uint32_t> Rng::sample_without_replacement(std::uint32_t n,
                                                           std::uint32_t k) {
  std::vector<std::uint32_t> out;
  if (n == 0 || k == 0) return out;
  if (k >= n) {
    out.resize(n);
    for (std::uint32_t i = 0; i < n; ++i) out[i] = i;
    shuffle(std::span<std::uint32_t>(out));
    return out;
  }
  out.reserve(k);
  // Floyd's algorithm: for j in [n-k, n), pick t in [0, j]; insert t or j.
  std::unordered_set<std::uint32_t> chosen;
  chosen.reserve(k * 2);
  for (std::uint32_t j = n - k; j < n; ++j) {
    const auto t = static_cast<std::uint32_t>(uniform_below(j + 1));
    const std::uint32_t pick = chosen.contains(t) ? j : t;
    chosen.insert(pick);
    out.push_back(pick);
  }
  return out;
}

}  // namespace updp2p::common
