#include "common/csv.hpp"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <ostream>
#include <sstream>

#include "common/table.hpp"

namespace updp2p::common {

std::string CsvWriter::escape(const std::string& field) {
  const bool needs_quoting =
      field.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quoting) return field;
  std::string quoted = "\"";
  for (const char c : field) {
    if (c == '"') quoted += '"';
    quoted += c;
  }
  quoted += '"';
  return quoted;
}

CsvWriter& CsvWriter::row(const std::vector<std::string>& cells) {
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i > 0) out_ << ',';
    out_ << escape(cells[i]);
  }
  out_ << '\n';
  return *this;
}

CsvWriter& CsvWriter::series(const Series& s, int precision) {
  for (std::size_t i = 0; i < s.size(); ++i) {
    row({s.label, format_double(s.x[i], precision),
         format_double(s.y[i], precision)});
  }
  return *this;
}

bool write_csv_file(const std::string& directory, const std::string& name,
                    const std::vector<std::vector<std::string>>& rows) {
  std::error_code ec;
  std::filesystem::create_directories(directory, ec);
  if (ec) return false;
  const std::string path = directory + "/" + name + ".csv";
  std::ostringstream buffer;
  CsvWriter writer(buffer);
  for (const auto& r : rows) writer.row(r);

  std::ofstream file(path, std::ios::trunc);
  if (!file) return false;
  file << buffer.str();
  file.close();
  if (!file) {
    std::remove(path.c_str());
    return false;
  }
  return true;
}

}  // namespace updp2p::common
