#include "common/stats.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace updp2p::common {

void RunningStats::add(double x) noexcept {
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

void RunningStats::merge(const RunningStats& other) noexcept {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const auto n1 = static_cast<double>(count_);
  const auto n2 = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double total = n1 + n2;
  mean_ += delta * n2 / total;
  m2_ += other.m2_ + delta * delta * n1 * n2 / total;
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStats::variance() const noexcept {
  return count_ > 1 ? m2_ / static_cast<double>(count_ - 1) : 0.0;
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

Histogram::Histogram(double lo, double hi, std::size_t buckets)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(buckets)),
      counts_(buckets, 0) {
  if (!(hi > lo) || buckets == 0) {
    throw std::invalid_argument("Histogram requires hi > lo and buckets > 0");
  }
}

void Histogram::add(double x) noexcept {
  ++total_;
  if (x < lo_) {
    ++underflow_;
  } else if (x >= hi_) {
    ++overflow_;
  } else {
    auto idx = static_cast<std::size_t>((x - lo_) / width_);
    idx = std::min(idx, counts_.size() - 1);  // guard FP edge at hi_
    ++counts_[idx];
  }
}

double Histogram::quantile(double q) const noexcept {
  if (total_ == 0) return lo_;
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(total_);
  double cumulative = static_cast<double>(underflow_);
  if (cumulative >= target) return lo_;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const auto in_bucket = static_cast<double>(counts_[i]);
    if (cumulative + in_bucket >= target && in_bucket > 0) {
      const double frac = (target - cumulative) / in_bucket;
      return lo_ + (static_cast<double>(i) + frac) * width_;
    }
    cumulative += in_bucket;
  }
  return hi_;
}

double percentile(std::vector<double> values, double q) noexcept {
  if (values.empty()) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  std::sort(values.begin(), values.end());
  const double pos = q * static_cast<double>(values.size() - 1);
  const auto lower = static_cast<std::size_t>(pos);
  const double frac = pos - static_cast<double>(lower);
  if (lower + 1 >= values.size()) return values.back();
  return values[lower] * (1.0 - frac) + values[lower + 1] * frac;
}

}  // namespace updp2p::common
