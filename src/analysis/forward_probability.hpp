// The PF(t) forwarding-probability family.
//
// Paper §4.1/Table 1: PF(t) is "the probability that a peer pushes an update
// in round t if it received it in round t−1"; it "can be any function" and
// is the main self-tuning knob (§5.4, §6). The factories below cover every
// shape evaluated in the paper:
//   constant(1)            — plain flooding (Gnutella-like),
//   constant(p)            — blind coin-flip gossip,
//   linear_decay           — PF(t) = 1 − 0.1t (Fig. 4),
//   geometric(a)           — PF(t) = a^t (Fig. 4, Table 2),
//   offset_geometric(a,b,c)— PF(t) = a·b^t + c (Fig. 5),
//   haas(p, k)             — GOSSIP1(p,k) of Haas et al. [13]: flood for k
//                            rounds, then forward with probability p.
#pragma once

#include <functional>
#include <string>

#include "common/types.hpp"

namespace updp2p::analysis {

/// A named forwarding-probability schedule. Values are clamped to [0,1]
/// by consumers; the schedule itself may be any function of the round.
struct PfSchedule {
  std::string label;
  std::function<double(common::Round)> probability;

  [[nodiscard]] double operator()(common::Round t) const {
    return probability(t);
  }
};

[[nodiscard]] PfSchedule pf_constant(double p);
[[nodiscard]] PfSchedule pf_linear_decay(double slope);
[[nodiscard]] PfSchedule pf_geometric(double base);
[[nodiscard]] PfSchedule pf_offset_geometric(double scale, double base,
                                             double offset);
[[nodiscard]] PfSchedule pf_haas(double p, common::Round flood_rounds);

}  // namespace updp2p::analysis
