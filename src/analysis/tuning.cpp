#include "analysis/tuning.hpp"

#include <algorithm>
#include <cmath>

#include "common/ensure.hpp"

namespace updp2p::analysis {

namespace {

PushTrajectory evaluate(const TuningRequest& request, double f_r,
                        double base) {
  PushModelParams params;
  params.total_replicas = request.total_replicas;
  params.initial_online = request.online_fraction * request.total_replicas;
  params.sigma = request.sigma;
  params.fanout_fraction = f_r;
  params.pf = base >= 1.0 ? pf_constant(1.0) : pf_geometric(base);
  return evaluate_push(params);
}

bool meets(const TuningRequest& request, const PushTrajectory& trajectory) {
  return trajectory.final_aware() >= request.target_aware &&
         trajectory.rounds_to_fraction(0.99) <= request.max_rounds99;
}

}  // namespace

TuningResult recommend_parameters(const TuningRequest& request) {
  UPDP2P_ENSURE(request.total_replicas >= 2.0, "need at least two replicas");
  UPDP2P_ENSURE(request.online_fraction > 0.0 && request.online_fraction <= 1.0,
                "online fraction in (0,1]");
  UPDP2P_ENSURE(request.target_aware > 0.0 && request.target_aware < 1.0,
                "target coverage in (0,1)");

  TuningResult best;
  const double min_f_r = 1.0 / request.total_replicas;  // fanout 1

  // Decay grid from gentle to aggressive, plus plain flooding.
  for (const double base : {1.0, 0.98, 0.95, 0.9, 0.85, 0.8}) {
    // Feasibility at the top of the fanout range?
    double high = std::min(1.0, 4'000.0 / request.total_replicas);
    if (!meets(request, evaluate(request, high, base))) continue;

    // Smallest feasible fanout for this base: coverage is monotone in f_r,
    // so binary-search the threshold, then take the cheapest feasible
    // point (cost is monotone increasing in f_r above the threshold).
    double low = min_f_r;
    if (!meets(request, evaluate(request, low, base))) {
      for (int iteration = 0; iteration < 40; ++iteration) {
        const double mid = 0.5 * (low + high);
        if (meets(request, evaluate(request, mid, base))) {
          high = mid;
        } else {
          low = mid;
        }
      }
    } else {
      high = low;  // even fanout 1 suffices
    }

    // Round the threshold up to a whole-peer fanout and re-verify (the
    // model is continuous; deployments push to integer peer counts).
    const double fanout_peers =
        std::ceil(high * request.total_replicas - 1e-9);
    const double f_r = fanout_peers / request.total_replicas;
    const auto trajectory = evaluate(request, f_r, base);
    if (!meets(request, trajectory)) continue;

    const double cost = trajectory.messages_per_initial_online();
    if (!best.feasible || cost < best.messages_per_online) {
      best.feasible = true;
      best.fanout_fraction = f_r;
      best.pf_decay_base = base;
      best.messages_per_online = cost;
      best.predicted_aware = trajectory.final_aware();
      best.predicted_rounds99 = trajectory.rounds_to_fraction(0.99);
    }
  }
  return best;
}

}  // namespace updp2p::analysis
