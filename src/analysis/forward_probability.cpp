#include "analysis/forward_probability.hpp"

#include <algorithm>
#include <cmath>

#include "common/ensure.hpp"
#include "common/table.hpp"

namespace updp2p::analysis {

PfSchedule pf_constant(double p) {
  UPDP2P_ENSURE(p >= 0.0 && p <= 1.0, "PF constant must be in [0,1]");
  return PfSchedule{"PF=" + common::format_double(p, 2),
                    [p](common::Round) { return p; }};
}

PfSchedule pf_linear_decay(double slope) {
  UPDP2P_ENSURE(slope >= 0.0, "decay slope must be non-negative");
  return PfSchedule{
      "PF(t)=1-" + common::format_double(slope, 2) + "t",
      [slope](common::Round t) {
        return std::max(0.0, 1.0 - slope * static_cast<double>(t));
      }};
}

PfSchedule pf_geometric(double base) {
  UPDP2P_ENSURE(base > 0.0 && base <= 1.0, "geometric base must be in (0,1]");
  return PfSchedule{"PF(t)=" + common::format_double(base, 2) + "^t",
                    [base](common::Round t) {
                      return std::pow(base, static_cast<double>(t));
                    }};
}

PfSchedule pf_offset_geometric(double scale, double base, double offset) {
  UPDP2P_ENSURE(base > 0.0 && base <= 1.0, "geometric base must be in (0,1]");
  UPDP2P_ENSURE(scale >= 0.0 && offset >= 0.0 && scale + offset <= 1.0,
                "scale+offset must keep PF within [0,1]");
  return PfSchedule{
      "PF(t)=" + common::format_double(scale, 2) + "*" +
          common::format_double(base, 2) + "^t+" +
          common::format_double(offset, 2),
      [scale, base, offset](common::Round t) {
        return scale * std::pow(base, static_cast<double>(t)) + offset;
      }};
}

PfSchedule pf_haas(double p, common::Round flood_rounds) {
  UPDP2P_ENSURE(p >= 0.0 && p <= 1.0, "Haas p must be in [0,1]");
  return PfSchedule{"G(" + common::format_double(p, 2) + "," +
                        std::to_string(flood_rounds) + ")",
                    [p, flood_rounds](common::Round t) {
                      return t <= flood_rounds ? 1.0 : p;
                    }};
}

}  // namespace updp2p::analysis
