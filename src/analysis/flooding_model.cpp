#include "analysis/flooding_model.hpp"

#include <cmath>
#include <limits>

#include "common/ensure.hpp"

namespace updp2p::analysis {

double expected_online(double total_replicas, double p_online) {
  UPDP2P_ENSURE(p_online >= 0.0 && p_online <= 1.0, "p_online in [0,1]");
  return total_replicas * p_online;
}

double expected_reached(double online, double attempts, double total) {
  UPDP2P_ENSURE(total > 0.0, "total must be positive");
  return online * attempts / total;
}

double expected_attempts_to_reach(double targets, double total_replicas,
                                  double p_online) {
  UPDP2P_ENSURE(targets > 0.0, "need a positive target count");
  UPDP2P_ENSURE(p_online > 0.0 && p_online <= 1.0, "p_online in (0,1]");
  const double lambda = total_replicas * p_online;  // E[online] (Poisson mean)
  // P(fewer than `targets` replicas online) — if the whole network has too
  // few online peers the expectation is driven by that tail.
  double tail = 0.0;
  double term = std::exp(-lambda);
  for (double i = 0.0; i < targets && term > 0.0; i += 1.0) {
    tail += term;
    term *= lambda / (i + 1.0);
  }
  const double reachable = 1.0 - tail;
  if (reachable <= 0.0) return std::numeric_limits<double>::infinity();
  return targets / (p_online * reachable);
}

double pure_flooding_messages(double absolute_fanout, common::Round rounds) {
  UPDP2P_ENSURE(absolute_fanout > 0.0, "fanout must be positive");
  if (absolute_fanout == 1.0) return static_cast<double>(rounds) + 1.0;
  // 1 + k + k^2 + ... + k^rounds
  return (std::pow(absolute_fanout, static_cast<double>(rounds) + 1.0) - 1.0) /
         (absolute_fanout - 1.0);
}

common::Round flooding_rounds_to_cover(double absolute_fanout, double p_online,
                                       double online_peers) {
  UPDP2P_ENSURE(online_peers >= 1.0, "need at least one online peer");
  const double effective = absolute_fanout * p_online;
  if (effective <= 1.0) return 0;  // subcritical: flooding never covers
  const double rounds = std::log(online_peers) / std::log(effective);
  return static_cast<common::Round>(std::ceil(rounds - 1e-9));
}

double duplicate_avoidance_messages_per_peer(double absolute_fanout) {
  return absolute_fanout;
}

}  // namespace updp2p::analysis
