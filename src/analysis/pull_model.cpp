#include "analysis/pull_model.hpp"

#include <algorithm>
#include <cmath>

#include "common/ensure.hpp"

namespace updp2p::analysis {

double pull_success_probability(double online_replicas, double aware_fraction,
                                double total_replicas, unsigned attempts) {
  UPDP2P_ENSURE(total_replicas > 0.0, "total replicas must be positive");
  const double hit = std::clamp(
      online_replicas * aware_fraction / total_replicas, 0.0, 1.0);
  if (hit <= 0.0) return 0.0;
  if (hit >= 1.0) return attempts > 0 ? 1.0 : 0.0;
  return 1.0 - std::pow(1.0 - hit, static_cast<double>(attempts));
}

unsigned pull_attempts_for_confidence(double online_replicas,
                                      double aware_fraction,
                                      double total_replicas,
                                      double confidence) {
  UPDP2P_ENSURE(confidence > 0.0 && confidence < 1.0,
                "confidence must be in (0,1)");
  const double hit = std::clamp(
      online_replicas * aware_fraction / total_replicas, 0.0, 1.0);
  if (hit <= 0.0) return 0;
  if (hit >= 1.0) return 1;
  const double n = std::log(1.0 - confidence) / std::log(1.0 - hit);
  return static_cast<unsigned>(std::ceil(n));
}

double push_catchup_probability(double online_replicas, double f_new_prev,
                                double sigma, double pf,
                                double fanout_fraction, double list_length) {
  const double pushers = online_replicas * f_new_prev * sigma *
                         std::clamp(pf, 0.0, 1.0);
  const double reach =
      std::clamp(fanout_fraction * (1.0 - list_length), 0.0, 1.0);
  if (pushers <= 0.0 || reach <= 0.0) return 0.0;
  if (reach >= 1.0) return 1.0;
  return 1.0 - std::exp(pushers * std::log1p(-reach));
}

}  // namespace updp2p::analysis
