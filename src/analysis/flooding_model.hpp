// Closed-form expectations for simple flooding (paper §5.6).
//
// The paper positions the push scheme against Gnutella-style flooding:
// attempts needed to reach online replicas under Poisson availability, the
// geometric message sum of pure flooding, and the fanout×online-count total
// of flooding with duplicate avoidance.
#pragma once

#include "common/types.hpp"

namespace updp2p::analysis {

/// E(R_on) = p_on · R.
[[nodiscard]] double expected_online(double total_replicas, double p_online);

/// Expected number of online peers reached by `attempts` distinct random
/// contacts when exactly `online` of `total` replicas are online:
/// online · attempts / total (§5.6).
[[nodiscard]] double expected_reached(double online, double attempts,
                                      double total);

/// Expected attempts E_x to reach `targets` online replicas when each
/// replica is online independently with probability p_on and the number of
/// online replicas is Poisson-distributed with mean R·p_on (§5.6):
///   E_x ≈ (x / p_on) · (1 − e^{−R·p_on} Σ_{i<x} (R·p_on)^i / i!)⁻¹-ish;
/// the correction term is negligible for R·p_on ≫ x, giving E_x → x / p_on.
[[nodiscard]] double expected_attempts_to_reach(double targets,
                                                double total_replicas,
                                                double p_online);

/// Total expected messages of pure flooding WITHOUT duplicate avoidance
/// after `rounds` rounds with absolute fanout k = R·f_r: the geometric sum
/// 1 + k + k² + … + k^rounds (§5.6).
[[nodiscard]] double pure_flooding_messages(double absolute_fanout,
                                            common::Round rounds);

/// Rounds for fanout-k flooding to cover `online` peers (latency metric):
/// smallest d with k_eff^d ≥ online, where k_eff = k·p_on is the expected
/// number of *online* peers reached per push.
[[nodiscard]] common::Round flooding_rounds_to_cover(double absolute_fanout,
                                                     double p_online,
                                                     double online_peers);

/// Gnutella-style flooding WITH duplicate avoidance: every online peer that
/// learns the rumor forwards exactly once to `absolute_fanout` random
/// replicas, so the total is fanout × (aware online peers) and the per-peer
/// overhead equals the fanout (§5.6: "there will be on average f_r messages
/// per online peer").
[[nodiscard]] double duplicate_avoidance_messages_per_peer(
    double absolute_fanout);

}  // namespace updp2p::analysis
