// Analytical model of the push phase (paper §4.1–§4.2).
//
// The model evaluates, round by round, the recurrences of §4.2:
//
//   R_on(t)      = R_on(t−1) · σ                                (Table 1, §4.1)
//   k(t)         = R_on(t−1) · f_new(t−1) · σ · PF(t)           forwarders
//   f_new(t)     = (1 − F_aware(t−1)) · (1 − (1−f_r)^{k(t)})    newly aware
//   F_aware(t)   = min(1, F_aware(t−1) + f_new(t))              (ceiling, §4.2)
//   l(t)         = 1 − (1−f_r)^{t+1}                            partial-list
//                  (capped variant: l(t) = min(l_max, l(t−1)+f_r(1−l(t−1))))
//   M(t)         = k(t) · R · f_r · (1 − l_eff(t−1))            messages
//   L_M(t)       = U + R · α · l(t)                             bytes/message
//
// with round 0 seeded by the initiator: M(0) = R·f_r, f_new(0) = f_r,
// l(0) = f_r. Setting l_eff ≡ 0 recovers flooding without partial lists
// (Gnutella-style duplicate counting); PF schedules select the paper's
// variants (see forward_probability.hpp).
//
// Peers coming online during the push are neglected exactly as the paper
// argues (§4.1: "peers coming online need to execute pull anyway").
#pragma once

#include <vector>

#include "analysis/forward_probability.hpp"
#include "common/stats.hpp"
#include "common/types.hpp"

namespace updp2p::analysis {

struct PushModelParams {
  double total_replicas = 10'000;   ///< R
  double initial_online = 1'000;    ///< R_on(0)
  double sigma = 1.0;               ///< σ, P(stay online per round)
  double fanout_fraction = 0.01;    ///< f_r
  PfSchedule pf = pf_constant(1.0); ///< PF(t)
  bool use_partial_list = true;     ///< propagate flooding list R_f
  double list_cap = 1.0;            ///< l_max (normalised); 1 = uncapped
  double update_size_bytes = 100.0; ///< |U|
  double replica_entry_bytes = 10.0;///< α (paper suggests ~10 bytes)
  common::Round max_rounds = 500;
  double min_new_aware = 1e-9;      ///< termination: rumor considered dead

  /// Absolute fanout R·f_r, the quantity Table 2 reports against.
  [[nodiscard]] double absolute_fanout() const {
    return total_replicas * fanout_fraction;
  }
};

/// One evaluated round of the recurrence.
struct PushRoundState {
  common::Round t = 0;
  double online = 0.0;          ///< R_on(t)
  double forwarders = 0.0;      ///< k(t)
  double new_aware = 0.0;       ///< f_new(t), fraction of online
  double aware = 0.0;           ///< F_aware(t), fraction of online
  double messages = 0.0;        ///< M(t)
  double cum_messages = 0.0;    ///< Σ M(τ), τ ≤ t
  double duplicates = 0.0;      ///< messages to already-aware/offline peers
  double list_length = 0.0;     ///< l(t), normalised partial-list length
  double message_bytes = 0.0;   ///< L_M(t)
};

struct PushTrajectory {
  std::vector<PushRoundState> rounds;

  [[nodiscard]] double final_aware() const {
    return rounds.empty() ? 0.0 : rounds.back().aware;
  }
  [[nodiscard]] double total_messages() const {
    return rounds.empty() ? 0.0 : rounds.back().cum_messages;
  }
  [[nodiscard]] double total_bytes() const;
  /// The paper's y-axis: total messages per member of the initial online
  /// population (§5, "number of messages generated per member of the
  /// initial online population").
  [[nodiscard]] double messages_per_initial_online() const;
  /// Push rounds actually used (latency metric of Table 2).
  [[nodiscard]] common::Round rounds_used() const {
    return rounds.empty() ? 0 : rounds.back().t;
  }
  /// First round at which awareness reached `quantile` of its final value —
  /// the practically relevant latency (decaying PF(t) schedules have a long
  /// tail of vanishing activity that rounds_used() includes).
  [[nodiscard]] common::Round rounds_to_fraction(double quantile = 0.99) const;
  /// True when the rumor failed to reach (almost) the whole online
  /// population — the Fig. 1(a) "dies out" regime.
  [[nodiscard]] bool died(double threshold = 0.99) const {
    return final_aware() < threshold;
  }
  /// (x = F_aware, y = cumulative messages / R_on(0)) series as plotted in
  /// Figs. 1–5.
  [[nodiscard]] common::Series to_series(std::string label) const;

  double initial_online = 0.0;
};

/// Evaluates the recurrences. Pure function of the parameters.
[[nodiscard]] PushTrajectory evaluate_push(const PushModelParams& params);

}  // namespace updp2p::analysis
