// Analytical model of the pull phase (paper §4.3) and of query servicing
// (§4.4, which reuses the pull analysis).
#pragma once

#include "common/types.hpp"

namespace updp2p::analysis {

/// Probability that a replica coming online while F_aware of the R_on
/// online replicas are aware obtains the update within `attempts` random
/// pull contacts (worst case — ignores concurrent pushes):
///   P = 1 − (1 − R_on·F_aware / R)^n                          (§4.3)
[[nodiscard]] double pull_success_probability(double online_replicas,
                                              double aware_fraction,
                                              double total_replicas,
                                              unsigned attempts);

/// Smallest number of pull attempts n such that the success probability
/// reaches `confidence`. Returns 0 if the target is unreachable (nobody
/// aware) — callers treat that as "keep retrying later".
[[nodiscard]] unsigned pull_attempts_for_confidence(double online_replicas,
                                                    double aware_fraction,
                                                    double total_replicas,
                                                    double confidence);

/// Probability that a peer coming online *during* the push phase receives
/// the update via push in the current round, when f_new_prev of the online
/// population became aware in the previous round and keeps pushing (§4.3):
///   P = 1 − (1 − f_r·(1 − l))^{R_on·f_new_prev·σ·PF}
[[nodiscard]] double push_catchup_probability(double online_replicas,
                                              double f_new_prev, double sigma,
                                              double pf, double fanout_fraction,
                                              double list_length);

}  // namespace updp2p::analysis
