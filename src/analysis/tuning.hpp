// Parameter recommendation — the §6 tuning question answered offline.
//
// Given the environment (R, availability, σ) and a target coverage, search
// the analytical model for the cheapest (fanout, PF-decay) configuration
// that still meets the target. This turns the paper's tuning heuristics
// ("it is essential to properly tune PF(t), lest the update is not
// propagated") into a reproducible procedure operators can run before
// provisioning a replica group.
#pragma once

#include "analysis/push_model.hpp"

namespace updp2p::analysis {

struct TuningRequest {
  double total_replicas = 1'000;
  double online_fraction = 0.2;    ///< expected R_on(0)/R
  double sigma = 0.95;
  double target_aware = 0.99;      ///< required final F_aware
  common::Round max_rounds99 = 30; ///< latency budget (rounds to 99% of final)
};

struct TuningResult {
  bool feasible = false;
  double fanout_fraction = 0.0;       ///< recommended f_r
  double pf_decay_base = 1.0;         ///< recommended PF(t) = base^t
  double messages_per_online = 0.0;   ///< predicted cost at the recommendation
  double predicted_aware = 0.0;
  common::Round predicted_rounds99 = 0;
};

/// Grid-searches PF decay bases and binary-searches the fanout per base,
/// returning the feasible configuration with the lowest predicted message
/// cost. Pure function of the request (model-based; no simulation).
[[nodiscard]] TuningResult recommend_parameters(const TuningRequest& request);

}  // namespace updp2p::analysis
