#include "analysis/push_model.hpp"

#include <algorithm>
#include <cmath>

#include "common/ensure.hpp"

namespace updp2p::analysis {

double PushTrajectory::total_bytes() const {
  double total = 0.0;
  for (const auto& r : rounds) total += r.messages * r.message_bytes;
  return total;
}

double PushTrajectory::messages_per_initial_online() const {
  return initial_online > 0.0 ? total_messages() / initial_online : 0.0;
}

common::Round PushTrajectory::rounds_to_fraction(double quantile) const {
  const double target = quantile * final_aware();
  for (const auto& r : rounds) {
    if (r.aware >= target) return r.t;
  }
  return rounds_used();
}

common::Series PushTrajectory::to_series(std::string label) const {
  common::Series series;
  series.label = std::move(label);
  for (const auto& r : rounds) {
    series.push(r.aware, initial_online > 0.0 ? r.cum_messages / initial_online
                                              : 0.0);
  }
  return series;
}

PushTrajectory evaluate_push(const PushModelParams& params) {
  UPDP2P_ENSURE(params.total_replicas >= 1.0, "need at least one replica");
  UPDP2P_ENSURE(params.initial_online >= 1.0 &&
                    params.initial_online <= params.total_replicas,
                "R_on(0) must be within [1, R]");
  UPDP2P_ENSURE(params.sigma >= 0.0 && params.sigma <= 1.0,
                "sigma must be in [0,1]");
  UPDP2P_ENSURE(params.fanout_fraction > 0.0 && params.fanout_fraction <= 1.0,
                "f_r must be in (0,1]");
  UPDP2P_ENSURE(params.list_cap >= 0.0 && params.list_cap <= 1.0,
                "normalised list cap must be in [0,1]");

  const double r_total = params.total_replicas;
  const double f_r = params.fanout_fraction;

  PushTrajectory trajectory;
  trajectory.initial_online = params.initial_online;

  // --- Round 0: the initiator pushes to f_r·R random replicas. -------------
  PushRoundState round0;
  round0.t = 0;
  round0.online = params.initial_online;
  round0.forwarders = 1.0;
  round0.messages = r_total * f_r;
  round0.cum_messages = round0.messages;
  round0.new_aware = f_r;  // each online replica is hit with probability f_r
  round0.aware = f_r;
  round0.list_length = std::min(params.list_cap, f_r);
  round0.duplicates =
      std::max(0.0, round0.messages - round0.new_aware * round0.online);
  round0.message_bytes = params.update_size_bytes +
                         r_total * params.replica_entry_bytes *
                             (params.use_partial_list ? round0.list_length : 0.0);
  trajectory.rounds.push_back(round0);

  double online = params.initial_online;
  double f_new_prev = round0.new_aware;
  double aware = round0.aware;
  double list_len = round0.list_length;
  double cum_messages = round0.messages;

  for (common::Round t = 1; t <= params.max_rounds; ++t) {
    const double pf = std::clamp(params.pf(t), 0.0, 1.0);

    // k(t): replicas that became aware in round t−1, are still online and
    // decide to forward.
    const double forwarders = online * f_new_prev * params.sigma * pf;

    // The population thins before this round's sends are processed.
    const double online_now = online * params.sigma;

    // Partial list suppresses the fraction of targets already contacted.
    const double suppression = params.use_partial_list ? list_len : 0.0;
    const double messages = forwarders * r_total * f_r * (1.0 - suppression);

    // Probability an uninformed online replica is missed by all k(t)
    // independent pushes of f_r·R random targets each: (1−f_r)^k(t).
    const double miss = forwarders > 0.0
                            ? std::exp(static_cast<double>(forwarders) *
                                       std::log1p(-f_r))
                            : 1.0;
    const double f_new = (1.0 - aware) * (1.0 - miss);
    const double new_aware_ceiling = std::min(f_new, 1.0 - aware);  // §4.2

    aware = std::min(1.0, aware + new_aware_ceiling);
    cum_messages += messages;

    // Partial-list growth: l(t) = l(t−1) + f_r·(1 − l(t−1)), capped at
    // l_max; growth law proved by induction in §4.2.
    const double grown = list_len + f_r * (1.0 - list_len);
    list_len = std::min(params.list_cap, grown);

    PushRoundState state;
    state.t = t;
    state.online = online_now;
    state.forwarders = forwarders;
    state.new_aware = new_aware_ceiling;
    state.aware = aware;
    state.messages = messages;
    state.cum_messages = cum_messages;
    state.duplicates =
        std::max(0.0, messages - new_aware_ceiling * online_now);
    state.list_length = list_len;
    state.message_bytes =
        params.update_size_bytes +
        r_total * params.replica_entry_bytes *
            (params.use_partial_list ? list_len : 0.0);
    trajectory.rounds.push_back(state);

    online = online_now;
    f_new_prev = new_aware_ceiling;

    // Terminate once the expected number of newly aware replicas in the
    // *next* round would be negligible: no forwarders means no messages.
    if (f_new_prev < params.min_new_aware || aware >= 1.0 - 1e-12) break;
  }

  return trajectory;
}

}  // namespace updp2p::analysis
