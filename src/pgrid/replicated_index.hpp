// ReplicatedIndex — the assembled system.
//
// This is the deployment story of the paper in one object: a P-Grid trie
// partitions the key space; the peers responsible for a partition form a
// replica group; every group keeps its partition quasi-consistent with the
// hybrid push/pull gossip protocol; queries route via P-Grid and resolve
// across several replicas (§4.4).
//
//   ReplicatedIndex index(config);
//   index.put(origin, "users/alice", "profile-v1");   // routed + gossiped
//   index.step_rounds(10);                            // let gossip work
//   auto v = index.get(origin, "users/alice");        // routed + resolved
//
// Availability is driven externally (set_online / attach a ChurnModel
// schedule): offline peers neither route, nor receive, nor answer — they
// reconcile through the pull phase when they return, exactly like the
// paper's replicas.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "churn/churn_model.hpp"
#include "common/rng.hpp"
#include "gossip/node.hpp"
#include "gossip/query.hpp"
#include "net/message_bus.hpp"
#include "pgrid/pgrid.hpp"

namespace updp2p::pgrid {

struct ReplicatedIndexConfig {
  PGridConfig grid;
  /// Group-level gossip parameters. `estimated_total_replicas` is set per
  /// replica group automatically; `fanout_fraction` applies within groups.
  gossip::GossipConfig gossip;
  std::uint64_t seed = 0xfeed;
};

/// Result of a routed operation.
struct RouteOutcome {
  bool ok = false;
  common::PeerId responsible = common::PeerId::invalid();
  unsigned hops = 0;
  unsigned attempts = 0;
};

class ReplicatedIndex {
 public:
  explicit ReplicatedIndex(ReplicatedIndexConfig config);

  // --- availability ---------------------------------------------------------

  /// Flips a peer online/offline. Coming online triggers the pull phase;
  /// going offline abandons in-flight expectations.
  void set_online(common::PeerId peer, bool online);
  [[nodiscard]] bool is_online(common::PeerId peer) const {
    return online_[peer.value()];
  }
  [[nodiscard]] std::size_t online_count() const;

  // --- time -------------------------------------------------------------------

  /// One gossip round: deliver queued messages to online peers, then run
  /// per-peer timers (pull-on-staleness, ack expiry).
  void step_round();
  void step_rounds(unsigned rounds) {
    for (unsigned i = 0; i < rounds; ++i) step_round();
  }

  /// Drives availability from a churn model for `rounds` rounds: each round
  /// the model advances and every peer whose state flipped gets the proper
  /// reconnect/disconnect treatment. The model's population must match.
  void drive(churn::ChurnModel& churn, common::Rng& rng, unsigned rounds);
  [[nodiscard]] common::Round current_round() const noexcept { return round_; }

  // --- application API ----------------------------------------------------------

  /// Routes from `origin` to the partition responsible for `key` and
  /// publishes the update there (push phase starts immediately).
  RouteOutcome put(common::PeerId origin, std::string_view key,
                   std::string payload, unsigned route_retries = 5);

  /// Deletes `key` via a tombstone published at its responsible partition.
  RouteOutcome remove(common::PeerId origin, std::string_view key,
                      unsigned route_retries = 5);

  /// Routes to the responsible partition and resolves the answers of up to
  /// `replicas_to_ask` online group members under `rule`.
  [[nodiscard]] std::optional<version::VersionedValue> get(
      common::PeerId origin, std::string_view key,
      gossip::QueryRule rule = gossip::QueryRule::kHybrid,
      std::size_t replicas_to_ask = 3, unsigned route_retries = 5);

  // --- introspection ---------------------------------------------------------------

  [[nodiscard]] const PGridNetwork& grid() const noexcept { return grid_; }
  [[nodiscard]] gossip::ReplicaNode& node(common::PeerId peer) {
    return *nodes_.at(peer.value());
  }
  [[nodiscard]] const gossip::ReplicaNode& node(common::PeerId peer) const {
    return *nodes_.at(peer.value());
  }
  [[nodiscard]] std::size_t population() const noexcept {
    return nodes_.size();
  }
  [[nodiscard]] const net::BusStats& bus_stats() const noexcept {
    return bus_.stats();
  }

  /// Fraction of the replica group of `key` whose winning version for the
  /// key equals `id` (consistency probe for tests/monitoring).
  [[nodiscard]] double group_consistency(std::string_view key,
                                         const version::VersionId& id) const;

 private:
  RouteOutcome route(common::PeerId origin, const BitPath& key_path,
                     unsigned retries);
  void dispatch(common::PeerId from, std::vector<gossip::OutboundMessage> out);

  ReplicatedIndexConfig config_;
  common::Rng rng_;
  /// Single-threaded driver: one scratch arena serves every node.
  gossip::WorkArena arena_;
  PGridNetwork grid_;
  std::vector<std::unique_ptr<gossip::ReplicaNode>> nodes_;
  std::vector<bool> online_;
  net::MessageBus<gossip::GossipPayload> bus_;
  common::Round round_ = 0;
};

}  // namespace updp2p::pgrid
