#include "pgrid/replicated_index.hpp"

#include <algorithm>

#include "common/ensure.hpp"

namespace updp2p::pgrid {

ReplicatedIndex::ReplicatedIndex(ReplicatedIndexConfig config)
    : config_(std::move(config)),
      rng_(config_.seed),
      grid_(PGridNetwork::build(config_.grid)) {
  nodes_.reserve(grid_.peer_count());
  online_.assign(grid_.peer_count(), true);

  for (std::uint32_t i = 0; i < grid_.peer_count(); ++i) {
    const common::PeerId self(i);
    const PGridPeer& peer = grid_.peer(self);
    // Group-scoped gossip: the "total replicas" a node reasons about is its
    // replica group, not the whole network.
    gossip::GossipConfig node_config = config_.gossip;
    node_config.estimated_total_replicas = peer.replicas.size() + 1;
    nodes_.push_back(std::make_unique<gossip::ReplicaNode>(
        self, std::move(node_config), common::StreamRng(config_.seed, i)));
    // Single-threaded driver: one arena serves the whole population.
    nodes_.back()->use_arena(&arena_);
    nodes_.back()->bootstrap(peer.replicas);
  }
}

std::size_t ReplicatedIndex::online_count() const {
  return static_cast<std::size_t>(
      std::count(online_.begin(), online_.end(), true));
}

void ReplicatedIndex::dispatch(common::PeerId from,
                               std::vector<gossip::OutboundMessage> out) {
  for (auto& message : out) {
    bus_.send(from, message.to, std::move(message.payload),
              message.size_bytes, round_);
  }
}

void ReplicatedIndex::set_online(common::PeerId peer, bool online) {
  const auto idx = peer.value();
  if (online_[idx] == online) return;
  online_[idx] = online;
  if (online) {
    dispatch(peer, nodes_[idx]->on_reconnect(round_));
  } else {
    nodes_[idx]->on_disconnect(round_);
  }
}

void ReplicatedIndex::step_round() {
  ++round_;
  const auto delivered = bus_.deliver_round(
      [this](common::PeerId to) { return online_[to.value()]; }, rng_);
  for (const auto& envelope : delivered) {
    dispatch(envelope.to,
             nodes_[envelope.to.value()]->handle_message(
                 envelope.from, envelope.payload, round_));
  }
  for (std::uint32_t i = 0; i < nodes_.size(); ++i) {
    if (!online_[i]) continue;
    dispatch(common::PeerId(i), nodes_[i]->on_round_start(round_));
  }
}

void ReplicatedIndex::drive(churn::ChurnModel& churn, common::Rng& rng,
                            unsigned rounds) {
  UPDP2P_ENSURE(churn.population() == nodes_.size(),
                "churn population must match index population");
  for (unsigned r = 0; r < rounds; ++r) {
    churn.advance(rng);
    for (std::uint32_t i = 0; i < nodes_.size(); ++i) {
      set_online(common::PeerId(i), churn.is_online(common::PeerId(i)));
    }
    step_round();
  }
}

RouteOutcome ReplicatedIndex::route(common::PeerId origin,
                                    const BitPath& key_path,
                                    unsigned retries) {
  UPDP2P_ENSURE(origin.value() < nodes_.size(), "origin out of range");
  RouteOutcome outcome;
  if (!online_[origin.value()]) return outcome;  // offline origins cannot act
  const auto probe = [this](common::PeerId peer) {
    return online_[peer.value()];
  };
  const SearchResult search =
      grid_.search_with_retries(origin, key_path, probe, rng_, retries);
  outcome.ok = search.found;
  outcome.responsible = search.responsible;
  outcome.hops = search.hops;
  outcome.attempts = search.attempts;
  return outcome;
}

RouteOutcome ReplicatedIndex::put(common::PeerId origin, std::string_view key,
                                  std::string payload,
                                  unsigned route_retries) {
  const auto key_path = BitPath::from_key(key, 64);
  RouteOutcome outcome = route(origin, key_path, route_retries);
  if (!outcome.ok) return outcome;
  auto& responsible = *nodes_[outcome.responsible.value()];
  dispatch(outcome.responsible,
           responsible.publish(key, std::move(payload), round_));
  return outcome;
}

RouteOutcome ReplicatedIndex::remove(common::PeerId origin,
                                     std::string_view key,
                                     unsigned route_retries) {
  const auto key_path = BitPath::from_key(key, 64);
  RouteOutcome outcome = route(origin, key_path, route_retries);
  if (!outcome.ok) return outcome;
  auto& responsible = *nodes_[outcome.responsible.value()];
  dispatch(outcome.responsible, responsible.remove(key, round_));
  return outcome;
}

std::optional<version::VersionedValue> ReplicatedIndex::get(
    common::PeerId origin, std::string_view key, gossip::QueryRule rule,
    std::size_t replicas_to_ask, unsigned route_retries) {
  const auto key_path = BitPath::from_key(key, 64);
  const RouteOutcome outcome = route(origin, key_path, route_retries);
  if (!outcome.ok) return std::nullopt;

  // Ask the found replica plus further online group members (§4.3: "it is
  // preferable to contact multiple peers and choose the most up to date").
  std::vector<common::PeerId> respondents{outcome.responsible};
  std::vector<common::PeerId> others = grid_.replica_group(key_path);
  rng_.shuffle(std::span<common::PeerId>(others));
  for (const common::PeerId peer : others) {
    if (respondents.size() >= replicas_to_ask) break;
    if (peer == outcome.responsible || !online_[peer.value()]) continue;
    respondents.push_back(peer);
  }

  std::vector<gossip::QueryAnswer> answers;
  answers.reserve(respondents.size());
  for (const common::PeerId peer : respondents) {
    const auto& node = *nodes_[peer.value()];
    answers.push_back(
        gossip::QueryAnswer{peer, node.read(key), node.confident(round_)});
  }
  return gossip::resolve_query(answers, rule);
}

double ReplicatedIndex::group_consistency(std::string_view key,
                                          const version::VersionId& id) const {
  const auto key_path = BitPath::from_key(key, 64);
  const auto& group = grid_.replica_group(key_path);
  if (group.empty()) return 0.0;
  std::size_t holding = 0;
  for (const common::PeerId peer : group) {
    const auto value = nodes_[peer.value()]->read(key);
    if (value.has_value() && value->id == id) ++holding;
  }
  return static_cast<double>(holding) / static_cast<double>(group.size());
}

}  // namespace updp2p::pgrid
