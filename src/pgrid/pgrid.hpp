// A self-contained P-Grid substrate (Aberer et al. [1, 3]).
//
// P-Grid is the distributed index the paper's update algorithm was designed
// for: a binary trie over the key space where each peer is responsible for
// one path (partition) and keeps, per trie level, references to peers on
// the *other* side of that level's split. Peers sharing a path form the
// replica group that the hybrid push/pull scheme keeps quasi-consistent.
//
// This implementation provides:
//   * balanced network construction for a configurable trie depth,
//   * prefix routing with randomised reference choice and retries over
//     offline peers (searches have probabilistic success, paper §2),
//   * replica-group lookup, which plugs directly into gossip::ReplicaNode.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "pgrid/bit_path.hpp"

namespace updp2p::pgrid {

/// One level of a peer's routing table: peers responsible for the sibling
/// subtree at this level.
struct RoutingLevel {
  BitPath sibling_prefix;
  std::vector<common::PeerId> refs;
};

/// A peer's position in the trie plus its local knowledge.
struct PGridPeer {
  common::PeerId id;
  BitPath path;
  std::vector<RoutingLevel> routing;       ///< one entry per path bit
  std::vector<common::PeerId> replicas;    ///< same-path peers (excl. self)
};

struct PGridConfig {
  std::size_t peers = 1'024;
  /// Trie depth; 2^depth partitions, peers/2^depth replicas per partition.
  std::uint8_t depth = 4;
  /// Routing references kept per level (more refs = more routing
  /// redundancy under churn).
  std::size_t refs_per_level = 5;
  std::uint64_t seed = 0x9215;
};

struct SearchResult {
  bool found = false;
  common::PeerId responsible = common::PeerId::invalid();
  unsigned hops = 0;      ///< routing forwards taken
  unsigned attempts = 0;  ///< peers probed (incl. offline ones skipped)
};

class PGridNetwork {
 public:
  using OnlineProbe = std::function<bool(common::PeerId)>;

  /// Builds a balanced network: peers are distributed round-robin over the
  /// 2^depth partitions, then routing tables are filled with random
  /// references into each sibling subtree.
  [[nodiscard]] static PGridNetwork build(const PGridConfig& config);

  /// Builds the network the way P-Grid actually bootstraps (Aberer, CoopIS
  /// 2001): peers start with the empty path and repeatedly meet random
  /// partners — two peers with the same path *split* (extend their paths
  /// with complementary bits and remember each other as the sibling
  /// reference); peers with diverging paths exchange routing references at
  /// their divergence level. Decentralised and randomized, it converges to
  /// the same trie `build()` constructs directly. `meetings` bounds the
  /// number of random pairwise exchanges (0 = a generous default).
  [[nodiscard]] static PGridNetwork build_by_exchanges(
      const PGridConfig& config, std::size_t meetings = 0);

  /// Routes a query for `key` from `origin` to a responsible peer. At each
  /// hop the current peer picks random references for the first level where
  /// its own path diverges from the key, skipping offline ones; the search
  /// fails when every candidate reference of some hop is offline.
  [[nodiscard]] SearchResult search(common::PeerId origin, const BitPath& key,
                                    const OnlineProbe& is_online,
                                    common::Rng& rng) const;

  /// Repeats `search` up to `max_tries` times (fresh random routing
  /// choices); models the serial-attempt analysis of paper §2.
  [[nodiscard]] SearchResult search_with_retries(common::PeerId origin,
                                                 const BitPath& key,
                                                 const OnlineProbe& is_online,
                                                 common::Rng& rng,
                                                 unsigned max_tries) const;

  [[nodiscard]] const PGridPeer& peer(common::PeerId id) const {
    return peers_.at(id.value());
  }
  [[nodiscard]] std::size_t peer_count() const noexcept {
    return peers_.size();
  }
  [[nodiscard]] std::uint8_t depth() const noexcept { return config_.depth; }

  /// All peers responsible for the partition containing `key` (empty if —
  /// only possible for exchange-built networks — no peer settled there).
  [[nodiscard]] const std::vector<common::PeerId>& replica_group(
      const BitPath& key) const;

  /// The partition (full-depth path) that `key` belongs to.
  [[nodiscard]] BitPath partition_of(const BitPath& key) const;

 private:
  PGridNetwork() = default;

  PGridConfig config_;
  std::vector<PGridPeer> peers_;
  std::unordered_map<BitPath, std::vector<common::PeerId>> partitions_;
};

}  // namespace updp2p::pgrid
