#include "pgrid/pgrid.hpp"

#include <algorithm>

#include "common/ensure.hpp"

namespace updp2p::pgrid {

PGridNetwork PGridNetwork::build(const PGridConfig& config) {
  UPDP2P_ENSURE(config.peers > 0, "network needs peers");
  UPDP2P_ENSURE(config.depth > 0 && config.depth <= 24,
                "depth must be in [1, 24]");
  UPDP2P_ENSURE((std::size_t{1} << config.depth) <= config.peers,
                "need at least one peer per partition");
  UPDP2P_ENSURE(config.refs_per_level > 0, "need routing references");

  PGridNetwork network;
  network.config_ = config;
  common::Rng rng(config.seed);

  // 1. Assign paths: shuffle peers, deal them round-robin over partitions
  //    so every partition gets an (almost) equal replica group.
  const std::size_t partition_count = std::size_t{1} << config.depth;
  std::vector<common::PeerId> order;
  order.reserve(config.peers);
  for (std::uint32_t i = 0; i < config.peers; ++i) order.emplace_back(i);
  rng.shuffle(std::span<common::PeerId>(order));

  std::vector<BitPath> partition_paths;
  partition_paths.reserve(partition_count);
  for (std::size_t p = 0; p < partition_count; ++p) {
    partition_paths.push_back(
        BitPath(static_cast<std::uint64_t>(p) << (64 - config.depth),
                config.depth));
  }

  network.peers_.resize(config.peers);
  for (std::size_t i = 0; i < order.size(); ++i) {
    const BitPath path = partition_paths[i % partition_count];
    PGridPeer& peer = network.peers_[order[i].value()];
    peer.id = order[i];
    peer.path = path;
    network.partitions_[path].push_back(order[i]);
  }

  // 2. Replica lists: same-partition peers, excluding oneself.
  for (auto& peer : network.peers_) {
    for (const common::PeerId other : network.partitions_[peer.path]) {
      if (other != peer.id) peer.replicas.push_back(other);
    }
  }

  // 3. Routing tables: at level l, references into the sibling subtree of
  //    the peer's path prefix. Candidates are all peers whose path starts
  //    with that sibling prefix.
  std::unordered_map<BitPath, std::vector<common::PeerId>> by_prefix;
  for (const auto& peer : network.peers_) {
    for (std::uint8_t l = 1; l <= config.depth; ++l) {
      by_prefix[peer.path.prefix(l)].push_back(peer.id);
    }
  }
  for (auto& peer : network.peers_) {
    peer.routing.reserve(config.depth);
    for (std::uint8_t l = 0; l < config.depth; ++l) {
      RoutingLevel level;
      level.sibling_prefix = peer.path.sibling_at(l);
      const auto& candidates = by_prefix[level.sibling_prefix];
      UPDP2P_ENSURE(!candidates.empty(),
                    "balanced construction fills every subtree");
      const std::size_t take =
          std::min(config.refs_per_level, candidates.size());
      for (const std::uint32_t idx : rng.sample_without_replacement(
               static_cast<std::uint32_t>(candidates.size()),
               static_cast<std::uint32_t>(take))) {
        level.refs.push_back(candidates[idx]);
      }
      peer.routing.push_back(std::move(level));
    }
  }
  return network;
}

BitPath PGridNetwork::partition_of(const BitPath& key) const {
  UPDP2P_ENSURE(key.length() >= config_.depth,
                "key must be at least as deep as the trie");
  return key.prefix(config_.depth);
}

const std::vector<common::PeerId>& PGridNetwork::replica_group(
    const BitPath& key) const {
  static const std::vector<common::PeerId> kEmpty;
  const auto it = partitions_.find(partition_of(key));
  return it == partitions_.end() ? kEmpty : it->second;
}

// --- self-organizing construction (Aberer, CoopIS 2001) ----------------------

namespace {

void add_ref(RoutingLevel& level, common::PeerId peer, std::size_t cap,
             common::Rng& rng) {
  if (std::find(level.refs.begin(), level.refs.end(), peer) !=
      level.refs.end()) {
    return;
  }
  if (level.refs.size() < cap) {
    level.refs.push_back(peer);
  } else {
    // Reservoir-style replacement keeps the table fresh without growth.
    level.refs[rng.pick_index(level.refs.size())] = peer;
  }
}

void add_replica(PGridPeer& peer, common::PeerId other) {
  if (other != peer.id && std::find(peer.replicas.begin(),
                                    peer.replicas.end(),
                                    other) == peer.replicas.end()) {
    peer.replicas.push_back(other);
  }
}

/// One pairwise exchange between peers a and b.
void meet(PGridPeer& a, PGridPeer& b, std::uint8_t depth, std::size_t cap,
          common::Rng& rng) {
  const std::uint8_t l = a.path.common_prefix_length(b.path);
  const bool a_exhausted = l == a.path.length();
  const bool b_exhausted = l == b.path.length();

  if (a_exhausted && b_exhausted) {
    if (l < depth) {
      // Identical paths, room to grow: split the partition — the defining
      // P-Grid move. Each side keeps the other as its sibling reference.
      a.path = a.path.appended(false);
      b.path = b.path.appended(true);
      a.routing.push_back(RoutingLevel{a.path.sibling_at(l), {b.id}});
      b.routing.push_back(RoutingLevel{b.path.sibling_at(l), {a.id}});
    } else {
      // Same full-depth path: they are replicas; union their knowledge.
      add_replica(a, b.id);
      add_replica(b, a.id);
      for (const common::PeerId peer : b.replicas) add_replica(a, peer);
      for (const common::PeerId peer : a.replicas) add_replica(b, peer);
    }
    return;
  }

  if (a_exhausted != b_exhausted) {
    // One path is a strict prefix of the other: the shorter peer
    // specialises into the complement of the longer peer's next bit,
    // keeping the longer peer as its first reference across that split.
    PGridPeer& shorter = a_exhausted ? a : b;
    PGridPeer& longer = a_exhausted ? b : a;
    const bool longer_bit = longer.path.bit(l);
    shorter.path = shorter.path.appended(!longer_bit);
    shorter.routing.push_back(
        RoutingLevel{shorter.path.sibling_at(l), {longer.id}});
    if (longer.routing.size() > l) {
      add_ref(longer.routing[l], shorter.id, cap, rng);
    }
    return;
  }

  // Paths diverge at level l: each is a valid level-l reference for the
  // other; additionally gossip same-side contacts (replicas qualify).
  add_ref(a.routing[l], b.id, cap, rng);
  add_ref(b.routing[l], a.id, cap, rng);
  for (const common::PeerId peer : b.replicas) {
    add_ref(a.routing[l], peer, cap, rng);
  }
  for (const common::PeerId peer : a.replicas) {
    add_ref(b.routing[l], peer, cap, rng);
  }
}

}  // namespace

PGridNetwork PGridNetwork::build_by_exchanges(const PGridConfig& config,
                                              std::size_t meetings) {
  UPDP2P_ENSURE(config.peers >= 2, "need at least two peers to exchange");
  UPDP2P_ENSURE(config.depth > 0 && config.depth <= 24,
                "depth must be in [1, 24]");
  UPDP2P_ENSURE((std::size_t{1} << config.depth) <= config.peers,
                "need at least one peer per partition");

  PGridNetwork network;
  network.config_ = config;
  common::Rng rng(config.seed ^ 0xE8C4A9E5ULL);

  network.peers_.resize(config.peers);
  for (std::uint32_t i = 0; i < config.peers; ++i) {
    network.peers_[i].id = common::PeerId(i);
  }

  if (meetings == 0) {
    // Enough random meetings for every peer to specialise to full depth
    // and collect references whp.
    meetings = config.peers * static_cast<std::size_t>(config.depth) * 40;
  }
  for (std::size_t m = 0; m < meetings; ++m) {
    const auto i = rng.pick_index(config.peers);
    auto j = rng.pick_index(config.peers);
    while (j == i) j = rng.pick_index(config.peers);
    meet(network.peers_[i], network.peers_[j], config.depth,
         config.refs_per_level, rng);
  }

  // Stragglers that never found a split partner extend randomly (in a real
  // deployment they would keep meeting peers; we bound the build time).
  for (auto& peer : network.peers_) {
    while (peer.path.length() < config.depth) {
      const std::uint8_t l = peer.path.length();
      peer.path = peer.path.appended(rng.bernoulli(0.5));
      peer.routing.push_back(RoutingLevel{peer.path.sibling_at(l), {}});
    }
  }

  // Partition map from the organically formed paths.
  for (const auto& peer : network.peers_) {
    network.partitions_[peer.path].push_back(peer.id);
  }

  // Repair pass — the §2 escape hatch ("if not enough replicas are known
  // they can be efficiently obtained by randomized search"): fill empty
  // routing levels and replica lists from the settled structure.
  std::unordered_map<BitPath, std::vector<common::PeerId>> by_prefix;
  for (const auto& peer : network.peers_) {
    for (std::uint8_t l = 1; l <= config.depth; ++l) {
      by_prefix[peer.path.prefix(l)].push_back(peer.id);
    }
  }
  for (auto& peer : network.peers_) {
    for (std::uint8_t l = 0; l < config.depth; ++l) {
      auto& level = peer.routing[l];
      if (!level.refs.empty()) continue;
      const auto it = by_prefix.find(level.sibling_prefix);
      if (it == by_prefix.end()) continue;  // genuinely empty subtree
      const auto& candidates = it->second;
      const std::size_t take =
          std::min(config.refs_per_level, candidates.size());
      for (const std::uint32_t idx : rng.sample_without_replacement(
               static_cast<std::uint32_t>(candidates.size()),
               static_cast<std::uint32_t>(take))) {
        level.refs.push_back(candidates[idx]);
      }
    }
    if (peer.replicas.empty()) {
      for (const common::PeerId other : network.partitions_[peer.path]) {
        add_replica(peer, other);
      }
    }
  }
  return network;
}

SearchResult PGridNetwork::search(common::PeerId origin, const BitPath& key,
                                  const OnlineProbe& is_online,
                                  common::Rng& rng) const {
  SearchResult result;
  common::PeerId current = origin;
  // Each hop strictly increases the matched prefix, so depth bounds hops.
  for (std::uint8_t guard = 0; guard <= config_.depth; ++guard) {
    const PGridPeer& peer = peers_[current.value()];
    ++result.attempts;
    if (peer.path.is_prefix_of(key)) {
      result.found = true;
      result.responsible = current;
      return result;
    }
    // First level where this peer's path diverges from the key: forward to
    // a random online reference on the key's side of that split.
    const std::uint8_t level = peer.path.common_prefix_length(key);
    const auto& refs = peer.routing[level].refs;
    std::vector<common::PeerId> shuffled(refs.begin(), refs.end());
    rng.shuffle(std::span<common::PeerId>(shuffled));
    common::PeerId next = common::PeerId::invalid();
    for (const common::PeerId candidate : shuffled) {
      ++result.attempts;
      if (is_online(candidate)) {
        next = candidate;
        break;
      }
    }
    if (!next.is_valid()) return result;  // dead end: all refs offline
    ++result.hops;
    current = next;
  }
  return result;
}

SearchResult PGridNetwork::search_with_retries(common::PeerId origin,
                                               const BitPath& key,
                                               const OnlineProbe& is_online,
                                               common::Rng& rng,
                                               unsigned max_tries) const {
  SearchResult total;
  for (unsigned i = 0; i < max_tries; ++i) {
    SearchResult attempt = search(origin, key, is_online, rng);
    total.hops += attempt.hops;
    total.attempts += attempt.attempts;
    if (attempt.found) {
      total.found = true;
      total.responsible = attempt.responsible;
      return total;
    }
  }
  return total;
}

}  // namespace updp2p::pgrid
