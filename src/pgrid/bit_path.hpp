// Binary key-space paths for the P-Grid trie (Aberer, CoopIS 2001).
//
// P-Grid associates each peer with a binary path — the partition of the
// key space it is responsible for — and data keys map to paths by hashing.
// Peers whose paths are equal replicate the same partition; these replica
// groups are exactly the population the paper's update algorithm serves.
#pragma once

#include <compare>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>

#include "common/ensure.hpp"

namespace updp2p::pgrid {

/// A big-endian bit string of length ≤ 64 ("0" = left subtree).
class BitPath {
 public:
  constexpr BitPath() noexcept = default;
  BitPath(std::uint64_t bits, std::uint8_t length);

  /// Parses a textual path like "0110".
  [[nodiscard]] static BitPath parse(std::string_view text);

  /// Maps an application key into the key space: the first `depth` bits of
  /// a 64-bit hash of the key.
  [[nodiscard]] static BitPath from_key(std::string_view key,
                                        std::uint8_t depth);

  [[nodiscard]] std::uint8_t length() const noexcept { return length_; }
  [[nodiscard]] bool empty() const noexcept { return length_ == 0; }

  /// Bit at position `i` (0 = most significant / root decision).
  [[nodiscard]] bool bit(std::uint8_t i) const;

  /// Path extended by one bit.
  [[nodiscard]] BitPath appended(bool b) const;

  /// First `n` bits of this path.
  [[nodiscard]] BitPath prefix(std::uint8_t n) const;

  /// Prefix of length i+1 with bit i flipped: the "other side" of the trie
  /// at level i — the subtree a routing reference at level i points into.
  [[nodiscard]] BitPath sibling_at(std::uint8_t i) const;

  [[nodiscard]] bool is_prefix_of(const BitPath& other) const;
  [[nodiscard]] std::uint8_t common_prefix_length(const BitPath& other) const;

  [[nodiscard]] std::string to_string() const;

  /// Left-aligned raw bit storage (hashing, serialisation).
  [[nodiscard]] constexpr std::uint64_t raw_bits() const noexcept {
    return bits_;
  }

  friend constexpr auto operator<=>(const BitPath&, const BitPath&) noexcept =
      default;

 private:
  std::uint64_t bits_ = 0;  // left-aligned: bit i is (bits_ >> (63 - i)) & 1
  std::uint8_t length_ = 0;
};

std::ostream& operator<<(std::ostream& os, const BitPath& path);

}  // namespace updp2p::pgrid

template <>
struct std::hash<updp2p::pgrid::BitPath> {
  std::size_t operator()(const updp2p::pgrid::BitPath& path) const noexcept {
    // bits and length jointly identify the path
    return std::hash<std::uint64_t>{}(path.raw_bits() * 31 + path.length());
  }
};
