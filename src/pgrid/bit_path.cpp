#include "pgrid/bit_path.hpp"

#include <ostream>

#include "common/hash.hpp"

namespace updp2p::pgrid {

BitPath::BitPath(std::uint64_t bits, std::uint8_t length) : length_(length) {
  UPDP2P_ENSURE(length <= 64, "paths hold at most 64 bits");
  // Zero everything beyond `length` so equality is well-defined.
  bits_ = length == 0 ? 0 : bits & (~std::uint64_t{0} << (64 - length));
}

BitPath BitPath::parse(std::string_view text) {
  UPDP2P_ENSURE(text.size() <= 64, "paths hold at most 64 bits");
  std::uint64_t bits = 0;
  for (std::size_t i = 0; i < text.size(); ++i) {
    UPDP2P_ENSURE(text[i] == '0' || text[i] == '1',
                  "path text must be binary digits");
    if (text[i] == '1') bits |= std::uint64_t{1} << (63 - i);
  }
  return BitPath(bits, static_cast<std::uint8_t>(text.size()));
}

BitPath BitPath::from_key(std::string_view key, std::uint8_t depth) {
  // FNV-1a distributes its low bits much better than its high bits, and the
  // path uses the most-significant bits; finalise with an avalanche mix so
  // short, similar keys spread uniformly over partitions.
  std::uint64_t h = common::fnv1a64(key);
  h ^= h >> 33;
  h *= 0xff51afd7ed558ccdULL;
  h ^= h >> 33;
  h *= 0xc4ceb9fe1a85ec53ULL;
  h ^= h >> 33;
  return BitPath(h, depth);
}

bool BitPath::bit(std::uint8_t i) const {
  UPDP2P_ENSURE(i < length_, "bit index out of range");
  return (bits_ >> (63 - i)) & 1;
}

BitPath BitPath::appended(bool b) const {
  UPDP2P_ENSURE(length_ < 64, "path is full");
  std::uint64_t bits = bits_;
  if (b) bits |= std::uint64_t{1} << (63 - length_);
  return BitPath(bits, static_cast<std::uint8_t>(length_ + 1));
}

BitPath BitPath::prefix(std::uint8_t n) const {
  UPDP2P_ENSURE(n <= length_, "prefix longer than path");
  return BitPath(bits_, n);
}

BitPath BitPath::sibling_at(std::uint8_t i) const {
  UPDP2P_ENSURE(i < length_, "sibling level out of range");
  const std::uint64_t flipped = bits_ ^ (std::uint64_t{1} << (63 - i));
  return BitPath(flipped, static_cast<std::uint8_t>(i + 1));
}

bool BitPath::is_prefix_of(const BitPath& other) const {
  if (length_ > other.length_) return false;
  return other.prefix(length_).raw_bits() == bits_;
}

std::uint8_t BitPath::common_prefix_length(const BitPath& other) const {
  const std::uint8_t max =
      static_cast<std::uint8_t>(std::min(length_, other.length_));
  for (std::uint8_t i = 0; i < max; ++i) {
    if (bit(i) != other.bit(i)) return i;
  }
  return max;
}

std::string BitPath::to_string() const {
  std::string out;
  out.reserve(length_);
  for (std::uint8_t i = 0; i < length_; ++i) out.push_back(bit(i) ? '1' : '0');
  return out;
}

std::ostream& operator<<(std::ostream& os, const BitPath& path) {
  return os << path.to_string();
}

}  // namespace updp2p::pgrid
