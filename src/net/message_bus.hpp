// Simulated point-to-point transport.
//
// Paper §3 deliberately ignores physical connectivity: "if two peers are
// online a communication channel may be established between them", and a
// peer that cannot be reached is indistinguishable from an offline peer.
// The bus therefore models only what the protocol observes — delivery to
// online peers, loss to offline ones, optional random loss — plus the
// bookkeeping the evaluation measures (message and byte counts, §4.1).
//
// The bus is round-synchronous: messages sent during round t are delivered
// at the start of round t+1, matching the discrete-time analysis model.
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <span>
#include <utility>
#include <vector>

#include "common/ensure.hpp"
#include "common/rng.hpp"
#include "common/types.hpp"

namespace updp2p::net {

/// Aggregate transport statistics for one protocol run.
struct BusStats {
  std::uint64_t messages_sent = 0;       ///< all sends, incl. to offline peers
  std::uint64_t messages_delivered = 0;  ///< receiver was online
  std::uint64_t messages_to_offline = 0; ///< receiver offline: silently lost
  std::uint64_t messages_partitioned = 0;///< blocked by the link filter (cut)
  std::uint64_t messages_dropped = 0;    ///< random loss (loss_probability)
  std::uint64_t bytes_sent = 0;

  [[nodiscard]] double delivery_ratio() const noexcept {
    return messages_sent == 0
               ? 1.0
               : static_cast<double>(messages_delivered) /
                     static_cast<double>(messages_sent);
  }
};

/// In-flight or delivered message envelope.
///
/// Payloads are moved, never copied, between send and delivery, so a
/// Payload holding ref-counted data (e.g. a gossip::SharedFrame of encoded
/// bytes) fans out to N recipients for N refcount bumps — the bus itself
/// never duplicates a wire frame. size_bytes is whatever the sender
/// charged; the bus only accumulates it.
template <typename Payload>
struct Envelope {
  common::PeerId from;
  common::PeerId to;
  Payload payload;
  std::uint64_t size_bytes = 0;
  common::Round sent_round = 0;
  /// Per-sender monotone sequence number. (from, seq) is unique within a
  /// round, which gives the sharded bus a total delivery order that does
  /// not depend on shard layout or thread interleaving.
  std::uint32_t seq = 0;
};

/// Round-synchronous message bus.
///
/// Usage per round: protocol calls send() any number of times; the driver
/// then calls deliver_round(online_probe) which applies loss, filters
/// messages addressed to offline peers, and returns the deliverable batch.
template <typename Payload>
class MessageBus {
 public:
  using EnvelopeT = Envelope<Payload>;

  explicit MessageBus(double loss_probability = 0.0)
      : loss_probability_(loss_probability) {
    UPDP2P_ENSURE(loss_probability >= 0.0 && loss_probability <= 1.0,
                  "loss probability must be in [0,1]");
  }

  void send(common::PeerId from, common::PeerId to, Payload payload,
            std::uint64_t size_bytes, common::Round round) {
    ++stats_.messages_sent;
    stats_.bytes_sent += size_bytes;
    pending_.push_back(
        EnvelopeT{from, to, std::move(payload), size_bytes, round});
  }

  /// Installs a connectivity predicate: a message is deliverable only when
  /// `filter(from, to)` is true. Models network partitions — peers across a
  /// cut "simply perceive each other to be offline" (§3). Pass nullptr to
  /// heal all partitions.
  void set_link_filter(
      std::function<bool(common::PeerId, common::PeerId)> filter) {
    link_filter_ = std::move(filter);
  }

  /// Flushes the pending batch. `is_online(PeerId)` decides deliverability.
  ///
  /// Double-buffered: the returned span is a non-owning window onto an
  /// internal vector that is reused (capacity retained) across rounds, so
  /// a steady-state round performs no allocation here. The batch — and any
  /// reference into its payloads — is invalidated by the next
  /// deliver_round call; do not hold it (or spans derived from it) across
  /// rounds. send() during iteration is safe (it appends to the separate
  /// pending buffer).
  template <typename OnlineProbe>
  [[nodiscard]] std::span<const EnvelopeT> deliver_round(
      OnlineProbe&& is_online, common::Rng& rng) {
    delivered_.clear();
    delivered_.reserve(pending_.size());
    // Hoist the std::function emptiness test out of the loop; the common
    // unpartitioned case then never touches the indirection.
    const bool has_filter = static_cast<bool>(link_filter_);
    for (auto& envelope : pending_) {
      if (!is_online(envelope.to)) {
        ++stats_.messages_to_offline;
        continue;
      }
      if (has_filter && !link_filter_(envelope.from, envelope.to)) {
        // §3: peers across a cut perceive each other as offline, but the
        // loss is attributed separately so partition experiments report
        // honest numbers.
        ++stats_.messages_partitioned;
        continue;
      }
      if (loss_probability_ > 0.0 && rng.bernoulli(loss_probability_)) {
        ++stats_.messages_dropped;
        continue;
      }
      ++stats_.messages_delivered;
      delivered_.push_back(std::move(envelope));
    }
    pending_.clear();
    return delivered_;
  }

  [[nodiscard]] std::size_t pending_count() const noexcept {
    return pending_.size();
  }
  [[nodiscard]] const BusStats& stats() const noexcept { return stats_; }
  void reset_stats() noexcept { stats_ = BusStats{}; }

 private:
  double loss_probability_;
  std::function<bool(common::PeerId, common::PeerId)> link_filter_;
  std::vector<EnvelopeT> pending_;
  std::vector<EnvelopeT> delivered_;  ///< reused batch buffer (double buffer)
  BusStats stats_;
};

/// Round-synchronous bus partitioned into per-(src_shard, dst_shard)
/// outboxes for parallel round execution.
///
/// The population [0, population) is cut into `shard_count` contiguous
/// blocks. During the parallel phase each shard task mutates only its own
/// row of outbox cells (send_from_shard) and its own stats slot, so no two
/// threads ever touch the same cell — the bus needs no locks. The protocol
/// is two-phase:
///
///   1. begin_round() — sequential: every cell's pending buffer becomes the
///      in-flight buffer (messages sent in round t surface in round t+1,
///      the discrete-time model of §3).
///   2. collect_into(dst, batch) — one caller per dst shard, in parallel:
///      gathers every in-flight envelope addressed to `dst` and sorts it by
///      the canonical (to, from, seq) key. The canonical order makes the
///      delivery sequence — and therefore every downstream RNG draw — a
///      pure function of the message *set*, independent of shard count and
///      thread interleaving. (from, seq) is unique per sender, so the sort
///      has no ties and no reliance on stability.
///
/// Delivery policy (offline receivers, partitions, random loss) is the
/// driver's job: it classifies each collected envelope and records the
/// outcome into its shard_stats(dst) slot; send-side counters are kept by
/// send_from_shard in the source shard's slot. stats() merges all slots.
template <typename Payload>
class ShardedMessageBus {
 public:
  using EnvelopeT = Envelope<Payload>;

  ShardedMessageBus(std::size_t shard_count, std::size_t population)
      : shards_(shard_count == 0 ? 1 : shard_count),
        block_(population == 0 ? 1
                               : (population + shards_ - 1) / shards_),
        cells_(shards_ * shards_),
        shard_stats_(shards_) {}

  [[nodiscard]] std::size_t shard_count() const noexcept { return shards_; }
  [[nodiscard]] std::size_t shard_of(common::PeerId peer) const noexcept {
    const std::size_t shard = peer.value() / block_;
    return shard < shards_ ? shard : shards_ - 1;
  }

  /// Enqueues a message from the parallel task that owns `src_shard`
  /// (which must be shard_of(from)). Thread-safe across *distinct* source
  /// shards by disjointness, not by locking.
  void send_from_shard(std::size_t src_shard, common::PeerId from,
                       common::PeerId to, Payload payload,
                       std::uint64_t size_bytes, common::Round round,
                       std::uint32_t seq) {
    BusStats& stats = shard_stats_[src_shard].stats;
    ++stats.messages_sent;
    stats.bytes_sent += size_bytes;
    cells_[src_shard * shards_ + shard_of(to)].pending.push_back(
        EnvelopeT{from, to, std::move(payload), size_bytes, round, seq});
  }

  /// Sequential-context convenience (round-0 publish, reconnect hooks).
  void send(common::PeerId from, common::PeerId to, Payload payload,
            std::uint64_t size_bytes, common::Round round,
            std::uint32_t seq) {
    send_from_shard(shard_of(from), from, to, std::move(payload), size_bytes,
                    round, seq);
  }

  /// Publishes the pending buffers: everything sent before this call
  /// becomes in-flight (deliverable this round); sends after it queue for
  /// the next round. Sequential — call between parallel phases.
  // holds(shard): sequential between parallel phases; no shard task runs
  void begin_round() {
    for (Cell& cell : cells_) {
      cell.inflight.clear();  // capacity retained
      std::swap(cell.pending, cell.inflight);
    }
  }

  /// Gathers the in-flight envelopes addressed to shard `dst` into `batch`
  /// (replacing its contents), sorted by (to, from, seq). Envelopes are
  /// moved out; call once per shard per round, from the task owning `dst`.
  void collect_into(std::size_t dst_shard, std::vector<EnvelopeT>& batch) {
    batch.clear();
    std::size_t total = 0;
    for (std::size_t src = 0; src < shards_; ++src) {
      total += cells_[src * shards_ + dst_shard].inflight.size();
    }
    batch.reserve(total);
    for (std::size_t src = 0; src < shards_; ++src) {
      for (EnvelopeT& envelope : cells_[src * shards_ + dst_shard].inflight) {
        batch.push_back(std::move(envelope));
      }
    }
    std::sort(batch.begin(), batch.end(),
              [](const EnvelopeT& a, const EnvelopeT& b) {
                if (a.to != b.to) return a.to < b.to;
                if (a.from != b.from) return a.from < b.from;
                return a.seq < b.seq;
              });
  }

  /// The stats slot owned by `shard` — the parallel task records its
  /// delivery outcomes here without contention.
  [[nodiscard]] BusStats& shard_stats(std::size_t shard) noexcept {
    return shard_stats_[shard].stats;
  }

  /// Merged view over all shard slots.
  // holds(shard): read-only merge run sequentially after the round joins
  [[nodiscard]] BusStats stats() const {
    BusStats merged;
    for (const PaddedStats& slot : shard_stats_) {
      merged.messages_sent += slot.stats.messages_sent;
      merged.messages_delivered += slot.stats.messages_delivered;
      merged.messages_to_offline += slot.stats.messages_to_offline;
      merged.messages_partitioned += slot.stats.messages_partitioned;
      merged.messages_dropped += slot.stats.messages_dropped;
      merged.bytes_sent += slot.stats.bytes_sent;
    }
    return merged;
  }

  // holds(shard): diagnostic count, called between rounds only
  [[nodiscard]] std::size_t pending_count() const noexcept {
    std::size_t total = 0;
    for (const Cell& cell : cells_) total += cell.pending.size();
    return total;
  }

 private:
  struct Cell {
    std::vector<EnvelopeT> pending;   ///< sends this round
    std::vector<EnvelopeT> inflight;  ///< deliverable this round
  };
  /// Padded so per-shard counters never false-share a cache line.
  struct alignas(64) PaddedStats {
    BusStats stats;
  };

  std::size_t shards_;
  std::size_t block_;
  std::vector<Cell> cells_;  ///< row-major [src][dst] — guarded-by(shard)
  std::vector<PaddedStats> shard_stats_;  // guarded-by(shard)
};

}  // namespace updp2p::net
