// Simulated point-to-point transport.
//
// Paper §3 deliberately ignores physical connectivity: "if two peers are
// online a communication channel may be established between them", and a
// peer that cannot be reached is indistinguishable from an offline peer.
// The bus therefore models only what the protocol observes — delivery to
// online peers, loss to offline ones, optional random loss — plus the
// bookkeeping the evaluation measures (message and byte counts, §4.1).
//
// The bus is round-synchronous: messages sent during round t are delivered
// at the start of round t+1, matching the discrete-time analysis model.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <utility>
#include <vector>

#include "common/ensure.hpp"
#include "common/rng.hpp"
#include "common/types.hpp"

namespace updp2p::net {

/// Aggregate transport statistics for one protocol run.
struct BusStats {
  std::uint64_t messages_sent = 0;       ///< all sends, incl. to offline peers
  std::uint64_t messages_delivered = 0;  ///< receiver was online
  std::uint64_t messages_to_offline = 0; ///< receiver offline: silently lost
  std::uint64_t messages_partitioned = 0;///< blocked by the link filter (cut)
  std::uint64_t messages_dropped = 0;    ///< random loss (loss_probability)
  std::uint64_t bytes_sent = 0;

  [[nodiscard]] double delivery_ratio() const noexcept {
    return messages_sent == 0
               ? 1.0
               : static_cast<double>(messages_delivered) /
                     static_cast<double>(messages_sent);
  }
};

/// In-flight or delivered message envelope.
template <typename Payload>
struct Envelope {
  common::PeerId from;
  common::PeerId to;
  Payload payload;
  std::uint64_t size_bytes = 0;
  common::Round sent_round = 0;
};

/// Round-synchronous message bus.
///
/// Usage per round: protocol calls send() any number of times; the driver
/// then calls deliver_round(online_probe) which applies loss, filters
/// messages addressed to offline peers, and returns the deliverable batch.
template <typename Payload>
class MessageBus {
 public:
  using EnvelopeT = Envelope<Payload>;

  explicit MessageBus(double loss_probability = 0.0)
      : loss_probability_(loss_probability) {
    UPDP2P_ENSURE(loss_probability >= 0.0 && loss_probability <= 1.0,
                  "loss probability must be in [0,1]");
  }

  void send(common::PeerId from, common::PeerId to, Payload payload,
            std::uint64_t size_bytes, common::Round round) {
    ++stats_.messages_sent;
    stats_.bytes_sent += size_bytes;
    pending_.push_back(
        EnvelopeT{from, to, std::move(payload), size_bytes, round});
  }

  /// Installs a connectivity predicate: a message is deliverable only when
  /// `filter(from, to)` is true. Models network partitions — peers across a
  /// cut "simply perceive each other to be offline" (§3). Pass nullptr to
  /// heal all partitions.
  void set_link_filter(
      std::function<bool(common::PeerId, common::PeerId)> filter) {
    link_filter_ = std::move(filter);
  }

  /// Flushes the pending batch. `is_online(PeerId)` decides deliverability.
  ///
  /// Double-buffered: the returned span is a non-owning window onto an
  /// internal vector that is reused (capacity retained) across rounds, so
  /// a steady-state round performs no allocation here. The batch — and any
  /// reference into its payloads — is invalidated by the next
  /// deliver_round call; do not hold it (or spans derived from it) across
  /// rounds. send() during iteration is safe (it appends to the separate
  /// pending buffer).
  template <typename OnlineProbe>
  [[nodiscard]] std::span<const EnvelopeT> deliver_round(
      OnlineProbe&& is_online, common::Rng& rng) {
    delivered_.clear();
    delivered_.reserve(pending_.size());
    // Hoist the std::function emptiness test out of the loop; the common
    // unpartitioned case then never touches the indirection.
    const bool has_filter = static_cast<bool>(link_filter_);
    for (auto& envelope : pending_) {
      if (!is_online(envelope.to)) {
        ++stats_.messages_to_offline;
        continue;
      }
      if (has_filter && !link_filter_(envelope.from, envelope.to)) {
        // §3: peers across a cut perceive each other as offline, but the
        // loss is attributed separately so partition experiments report
        // honest numbers.
        ++stats_.messages_partitioned;
        continue;
      }
      if (loss_probability_ > 0.0 && rng.bernoulli(loss_probability_)) {
        ++stats_.messages_dropped;
        continue;
      }
      ++stats_.messages_delivered;
      delivered_.push_back(std::move(envelope));
    }
    pending_.clear();
    return delivered_;
  }

  [[nodiscard]] std::size_t pending_count() const noexcept {
    return pending_.size();
  }
  [[nodiscard]] const BusStats& stats() const noexcept { return stats_; }
  void reset_stats() noexcept { stats_ = BusStats{}; }

 private:
  double loss_probability_;
  std::function<bool(common::PeerId, common::PeerId)> link_filter_;
  std::vector<EnvelopeT> pending_;
  std::vector<EnvelopeT> delivered_;  ///< reused batch buffer (double buffer)
  BusStats stats_;
};

}  // namespace updp2p::net
