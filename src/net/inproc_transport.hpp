// Deterministic in-process loopback transport.
//
// InprocNetwork is a virtual-time datagram switch: endpoints attach under a
// peer id, sends are scheduled with per-link loss and latency, and the
// driver advances virtual time explicitly. Every stochastic choice draws
// from a counter-based StreamRng keyed (seed, link, purpose), so the whole
// delivery schedule — order, losses, delays — is a pure function of
// (config, submitted datagrams) and independent of wall-clock, allocation
// addresses or iteration incidentals. That is what lets an
// InprocTransport-backed PeerRuntime run reproduce a pinned golden outcome
// while the very same runtime code drives real UDP sockets.
//
// Offline semantics mirror the paper's §3 model: a datagram that arrives
// while the destination is not listening is dropped (and counted), never
// queued — an offline peer must recover through the pull phase.
#pragma once

#include <cstdint>
#include <memory>
#include <queue>
#include <unordered_map>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "net/latency.hpp"
#include "net/transport.hpp"

namespace updp2p::net {

class InprocTransport;

/// Chaos-layer hook consulted on every submitted datagram, before the base
/// per-link loss draw. A policy can swallow the datagram, fan it out as
/// duplicates, or add directional delay on top of the sampled latency —
/// enough to express partitions, asymmetric links and reorder/duplication
/// windows without touching the switch itself (src/chaos builds on this).
///
/// Determinism contract: the only randomness a policy may use is the
/// per-directed-link StreamRng handed in (its draw index advances only for
/// links the policy actually draws on), so installing a policy never
/// perturbs the loss/latency streams and a null policy leaves the schedule
/// bit-identical to a hook-less build.
class LinkFaultPolicy {
 public:
  struct Decision {
    bool drop = false;      ///< swallow the datagram (counted dropped_policy)
    unsigned copies = 1;    ///< deliveries to schedule; 2+ means duplicates
    common::SimTime extra_delay = 0.0;  ///< added to every copy's latency
  };

  virtual ~LinkFaultPolicy() = default;

  /// Called once per submit on a link with an attached destination. `rng`
  /// is the link's dedicated chaos stream (purpose-separated from the
  /// loss/latency streams).
  virtual Decision on_submit(common::PeerId from, common::PeerId to,
                             std::span<const std::byte> payload,
                             common::StreamRng& rng) = 0;
};

struct InprocNetworkConfig {
  /// Root seed; per-link streams are keyed (seed, from||to, purpose).
  std::uint64_t seed = 0x11fe;
  /// Independent per-datagram loss probability.
  double loss_probability = 0.0;
  /// One-way delay model; nullptr defaults to ConstantLatency(0.05).
  std::shared_ptr<LatencyModel> latency;
};

/// Switch-level counters (sender/receiver counters live in TransportStats).
struct InprocNetworkStats {
  std::uint64_t datagrams_submitted = 0;
  std::uint64_t datagrams_delivered = 0;
  std::uint64_t dropped_loss = 0;
  std::uint64_t dropped_offline = 0;  ///< destination attached but not listening
  std::uint64_t dropped_detached = 0; ///< destination endpoint gone at delivery
  std::uint64_t dropped_policy = 0;   ///< swallowed by the LinkFaultPolicy
  std::uint64_t datagrams_duplicated = 0;  ///< extra copies a policy fanned out
};

class InprocNetwork {
 public:
  explicit InprocNetwork(InprocNetworkConfig config = {});
  ~InprocNetwork();
  InprocNetwork(const InprocNetwork&) = delete;
  InprocNetwork& operator=(const InprocNetwork&) = delete;

  /// Creates the endpoint for `self`. One endpoint per peer id; the network
  /// must outlive every endpoint it handed out. Endpoints start listening.
  [[nodiscard]] std::unique_ptr<InprocTransport> attach(common::PeerId self);

  /// Delivers every in-flight datagram due at or before `now` (in delivery
  /// order: time, then submission sequence) and advances virtual time.
  /// `now` must be monotone across calls.
  void advance_to(common::SimTime now);

  [[nodiscard]] common::SimTime now() const noexcept { return now_; }
  [[nodiscard]] std::size_t in_flight() const noexcept {
    return flights_.size();
  }
  [[nodiscard]] const InprocNetworkStats& stats() const noexcept {
    return stats_;
  }

  /// Installs (or clears, with nullptr) the chaos hook. Borrowed pointer:
  /// the policy must outlive the network or be cleared first. Swapping the
  /// policy mid-run is allowed — scenario phases do exactly that.
  void set_link_policy(LinkFaultPolicy* policy) noexcept { policy_ = policy; }

 private:
  friend class InprocTransport;

  struct Flight {
    common::SimTime at = 0.0;
    std::uint64_t seq = 0;  ///< submission order; total tiebreak at equal times
    common::PeerId from;
    common::PeerId to;
    DatagramBytes bytes;

    friend bool operator>(const Flight& a, const Flight& b) {
      return a.at != b.at ? a.at > b.at : a.seq > b.seq;
    }
  };

  /// Persistent per-directed-link streams: the draw index advances with
  /// every datagram on that link, independent of all other links.
  struct LinkRngs {
    common::StreamRng loss;
    common::StreamRng latency;
    common::StreamRng chaos;  ///< handed to the LinkFaultPolicy, never drawn here
  };

  /// Called by the sending endpoint. Returns false when `to` has no
  /// attached endpoint (parity with UDP "no route").
  bool submit(common::PeerId from, common::PeerId to,
              std::span<const std::byte> payload);
  void detach(common::PeerId self) noexcept;
  [[nodiscard]] LinkRngs& link_rngs(common::PeerId from, common::PeerId to);

  InprocNetworkConfig config_;
  std::shared_ptr<LatencyModel> latency_;  ///< resolved (never null)
  std::priority_queue<Flight, std::vector<Flight>, std::greater<>> flights_;
  std::unordered_map<common::PeerId, InprocTransport*> endpoints_;
  std::unordered_map<std::uint64_t, LinkRngs> links_;
  LinkFaultPolicy* policy_ = nullptr;  ///< borrowed; nullptr = no chaos
  std::uint64_t next_seq_ = 0;
  common::SimTime now_ = 0.0;
  InprocNetworkStats stats_;
};

/// Endpoint handed out by InprocNetwork::attach.
class InprocTransport final : public Transport {
 public:
  ~InprocTransport() override;
  InprocTransport(const InprocTransport&) = delete;
  InprocTransport& operator=(const InprocTransport&) = delete;

  [[nodiscard]] common::PeerId self() const noexcept override { return self_; }
  bool send(common::PeerId to, std::span<const std::byte> payload) override;
  std::size_t drain(std::vector<InboundDatagram>& out) override;
  void set_listening(bool listening) override { listening_ = listening; }
  [[nodiscard]] bool listening() const noexcept override { return listening_; }
  [[nodiscard]] const TransportStats& stats() const noexcept override {
    return stats_;
  }

 private:
  friend class InprocNetwork;
  InprocTransport(InprocNetwork* network, common::PeerId self)
      : network_(network), self_(self) {}

  InprocNetwork* network_;  ///< cleared if the network dies first
  common::PeerId self_;
  bool listening_ = true;
  std::vector<InboundDatagram> inbox_;
  TransportStats stats_;
};

}  // namespace updp2p::net
