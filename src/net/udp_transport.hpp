// Live UDP datagram transport.
//
// One nonblocking IPv4 UDP socket per peer, a static directory mapping
// peer ids to (host, port), and the fixed frame header of frame.hpp so the
// receiver learns the sender's peer identity. UDP's native contract —
// best-effort, unordered, silently lossy — is exactly the network model of
// the paper (§3), so no reliability is layered here; retry/timeout/backoff
// live in runtime::PeerRuntime where acks and pull responses can cancel
// them.
//
// The event loop integration is poll()-based: wait_readable(timeout) parks
// the caller until a datagram arrives or the timeout elapses, and drain()
// then pulls everything the kernel buffered without blocking.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/types.hpp"
#include "net/transport.hpp"

namespace updp2p::net {

/// Directory entry: where a peer id lives.
struct UdpPeerAddress {
  common::PeerId id;
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
};

struct UdpTransportConfig {
  common::PeerId self;
  std::string bind_host = "127.0.0.1";
  /// 0 binds an ephemeral port; read it back via bound_port().
  std::uint16_t bind_port = 0;
  /// Static membership directory. Entries for unknown ids may be added
  /// later via add_route(); sends to ids with no entry fail (send_no_route).
  std::vector<UdpPeerAddress> peers;
  /// Largest accepted datagram (frame header + payload).
  std::size_t max_datagram_bytes = 64 * 1024;
};

class UdpTransport final : public Transport {
 public:
  /// Opens and binds the socket. Returns nullptr and fills `error` (when
  /// non-null) on failure — a daemon wants a clean exit message, not an
  /// abort, when a port is taken.
  [[nodiscard]] static std::unique_ptr<UdpTransport> open(
      const UdpTransportConfig& config, std::string* error = nullptr);

  ~UdpTransport() override;
  UdpTransport(const UdpTransport&) = delete;
  UdpTransport& operator=(const UdpTransport&) = delete;

  [[nodiscard]] common::PeerId self() const noexcept override { return self_; }
  bool send(common::PeerId to, std::span<const std::byte> payload) override;
  std::size_t drain(std::vector<InboundDatagram>& out) override;
  /// Parks the buffer on the receive free list; the next drain() fills it
  /// in place of a fresh allocation. With a disciplined caller (PeerRuntime
  /// recycles every datagram it consumes) the steady-state receive path
  /// allocates nothing.
  void recycle(DatagramBytes&& bytes) override;
  /// While not listening, inbound datagrams are still read off the socket
  /// (so the kernel buffer cannot smuggle them across an offline window)
  /// but discarded and counted dropped_offline.
  void set_listening(bool listening) override { listening_ = listening; }
  [[nodiscard]] bool listening() const noexcept override { return listening_; }
  [[nodiscard]] const TransportStats& stats() const noexcept override {
    return stats_;
  }

  /// Registers (or updates) the address of a peer id.
  void add_route(const UdpPeerAddress& peer);

  /// The locally bound UDP port (useful with bind_port = 0).
  [[nodiscard]] std::uint16_t bound_port() const noexcept { return port_; }
  /// Datagrams delivered into a recycled buffer instead of a fresh one.
  [[nodiscard]] std::uint64_t recv_buffers_reused() const noexcept {
    return recv_buffers_reused_;
  }
  /// The raw socket fd, for callers composing their own poll/epoll set.
  [[nodiscard]] int fd() const noexcept { return fd_; }

  /// Blocks up to `timeout_ms` for the socket to become readable. Returns
  /// true when readable, false on timeout. timeout_ms <= 0 polls without
  /// blocking.
  [[nodiscard]] bool wait_readable(int timeout_ms);

 private:
  struct Resolved {
    std::uint32_t ipv4_be = 0;  ///< network byte order
    std::uint16_t port_be = 0;  ///< network byte order
  };

  UdpTransport(common::PeerId self, int fd, std::uint16_t port,
               std::size_t max_datagram_bytes)
      : self_(self), fd_(fd), port_(port),
        max_datagram_bytes_(max_datagram_bytes) {}

  common::PeerId self_;
  int fd_ = -1;
  std::uint16_t port_ = 0;
  std::size_t max_datagram_bytes_;
  bool listening_ = true;
  std::unordered_map<common::PeerId, Resolved> routes_;
  std::vector<std::byte> frame_scratch_;  ///< reused send buffer
  std::vector<std::byte> recv_scratch_;   ///< reused receive buffer
  std::vector<DatagramBytes> recv_pool_;  ///< recycled delivery buffers
  std::uint64_t recv_buffers_reused_ = 0;
  TransportStats stats_;
};

}  // namespace updp2p::net
