#include "net/inproc_transport.hpp"

#include "common/ensure.hpp"

namespace updp2p::net {

namespace {
/// Purpose keys for the per-link StreamRng streams. Distinct from every
/// purpose the simulators use (they key purposes off node behaviour, not
/// links), so live-transport draws never collide with simulator draws.
constexpr std::uint64_t kLossPurpose = 0x1055;
constexpr std::uint64_t kLatencyPurpose = 0x1A7E;
constexpr std::uint64_t kChaosPurpose = 0xC405;

/// Upper bound on policy fan-out; a duplication window doubling every
/// datagram is chaos, 2^32 copies is a bug.
constexpr unsigned kMaxPolicyCopies = 16;

[[nodiscard]] std::uint64_t link_key(common::PeerId from,
                                     common::PeerId to) noexcept {
  return (static_cast<std::uint64_t>(from.value()) << 32) | to.value();
}
}  // namespace

InprocNetwork::InprocNetwork(InprocNetworkConfig config)
    : config_(config),
      latency_(config.latency ? config.latency
                              : std::make_shared<ConstantLatency>(0.05)) {
  UPDP2P_ENSURE(
      config_.loss_probability >= 0.0 && config_.loss_probability <= 1.0,
      "loss probability must be in [0,1]");
}

InprocNetwork::~InprocNetwork() {
  for (auto& [id, endpoint] : endpoints_) endpoint->network_ = nullptr;
}

std::unique_ptr<InprocTransport> InprocNetwork::attach(common::PeerId self) {
  UPDP2P_ENSURE(self.is_valid(), "cannot attach the invalid peer id");
  UPDP2P_ENSURE(!endpoints_.contains(self),
                "peer id already attached to this network");
  // Not make_unique: the constructor is private to keep attach the only way
  // to mint endpoints.
  auto endpoint =
      std::unique_ptr<InprocTransport>(new InprocTransport(this, self));
  endpoints_.emplace(self, endpoint.get());
  return endpoint;
}

void InprocNetwork::detach(common::PeerId self) noexcept {
  endpoints_.erase(self);
}

InprocNetwork::LinkRngs& InprocNetwork::link_rngs(common::PeerId from,
                                                  common::PeerId to) {
  const std::uint64_t key = link_key(from, to);
  auto it = links_.find(key);
  if (it == links_.end()) {
    it = links_
             .emplace(key,
                      LinkRngs{
                          common::StreamRng(config_.seed, key, kLossPurpose),
                          common::StreamRng(config_.seed, key, kLatencyPurpose),
                          common::StreamRng(config_.seed, key, kChaosPurpose),
                      })
             .first;
  }
  return it->second;
}

bool InprocNetwork::submit(common::PeerId from, common::PeerId to,
                           std::span<const std::byte> payload) {
  if (!endpoints_.contains(to)) return false;
  ++stats_.datagrams_submitted;
  LinkRngs& rngs = link_rngs(from, to);
  LinkFaultPolicy::Decision decision;
  if (policy_ != nullptr) {
    decision = policy_->on_submit(from, to, payload, rngs.chaos);
    UPDP2P_ENSURE(decision.copies <= kMaxPolicyCopies,
                  "link policy fan-out exceeds the copy cap");
    UPDP2P_ENSURE(decision.extra_delay >= 0.0,
                  "link policy extra delay must be non-negative");
  }
  if (decision.drop || decision.copies == 0) {
    ++stats_.dropped_policy;
    return true;  // handed to the network; the policy ate it
  }
  if (config_.loss_probability > 0.0 &&
      rngs.loss.bernoulli(config_.loss_probability)) {
    ++stats_.dropped_loss;
    return true;  // handed to the network; the network ate it
  }
  // Every copy samples its own latency: duplicates land at independent
  // times, which is what makes a duplication window also a reorder source.
  for (unsigned copy = 0; copy < decision.copies; ++copy) {
    const common::SimTime delay =
        latency_->sample(rngs.latency) + decision.extra_delay;
    flights_.push(Flight{now_ + delay, next_seq_++, from, to,
                         DatagramBytes(payload.begin(), payload.end())});
  }
  stats_.datagrams_duplicated += decision.copies - 1;
  return true;
}

void InprocNetwork::advance_to(common::SimTime now) {
  UPDP2P_ENSURE(now >= now_, "virtual time must advance monotonically");
  now_ = now;
  while (!flights_.empty() && flights_.top().at <= now_) {
    // priority_queue::top is const; the pop-after-move idiom is safe here
    // because nothing reads the moved-from flight before pop.
    Flight flight = std::move(const_cast<Flight&>(flights_.top()));
    flights_.pop();
    const auto it = endpoints_.find(flight.to);
    if (it == endpoints_.end()) {
      ++stats_.dropped_detached;
      continue;
    }
    InprocTransport& dest = *it->second;
    if (!dest.listening_) {
      ++stats_.dropped_offline;
      ++dest.stats_.dropped_offline;
      continue;
    }
    ++stats_.datagrams_delivered;
    ++dest.stats_.datagrams_received;
    dest.stats_.bytes_received += flight.bytes.size();
    dest.inbox_.push_back(
        InboundDatagram{flight.from, std::move(flight.bytes)});
  }
}

InprocTransport::~InprocTransport() {
  if (network_ != nullptr) network_->detach(self_);
}

bool InprocTransport::send(common::PeerId to,
                           std::span<const std::byte> payload) {
  if (network_ == nullptr || !network_->submit(self_, to, payload)) {
    ++stats_.send_no_route;
    return false;
  }
  ++stats_.datagrams_sent;
  stats_.bytes_sent += payload.size();
  return true;
}

std::size_t InprocTransport::drain(std::vector<InboundDatagram>& out) {
  const std::size_t count = inbox_.size();
  for (InboundDatagram& datagram : inbox_) {
    out.push_back(std::move(datagram));
  }
  inbox_.clear();
  return count;
}

}  // namespace updp2p::net
