// Transport-level datagram framing.
//
// A UDP datagram must carry the sender's peer identity: the gossip codec
// frames *payloads* (its own magic/version/kind header) but deliberately
// knows nothing about transport addressing. The frame header prepended to
// every live datagram is fixed-size and payload-agnostic:
//
//   offset  size  field
//   0       2     magic 0x55 0x50 ("UP")
//   2       1     frame version (kFrameVersion)
//   3       1     flags (reserved, must be 0)
//   4       4     source peer id, unsigned little-endian
//   8       ...   payload (a gossip::codec byte string)
//
// Parsing is fail-safe — malformed input yields nullopt, never UB — and
// mirrors the codec's kMaxWirePeerId hardening: a hostile source id cannot
// smuggle PeerId::invalid() or command population-sized allocations
// downstream. See docs/protocol.md §5 "Wire framing".
#pragma once

#include <cstdint>
#include <optional>
#include <span>

#include "common/types.hpp"

namespace updp2p::net {

inline constexpr std::uint8_t kFrameVersion = 1;
inline constexpr std::size_t kFrameHeaderBytes = 8;

/// Upper bound (exclusive) on source peer ids accepted off the wire. Kept
/// equal to gossip::kMaxWirePeerId (2^28) — the two layers harden the same
/// dense-array indexing paths and must not drift apart.
inline constexpr std::uint64_t kMaxFramePeerId = std::uint64_t{1} << 28;

/// Upper bound (exclusive) on the chunk keys the payload codec accepts in
/// its chunked peer-set encoding (codec v2): a chunk keyed below this can
/// only express ids below kMaxFramePeerId, since a chunk spans the 2^16
/// ids sharing its key as their high bits. Kept equal to
/// gossip::kMaxWireChunkKey for the same no-drift reason as above;
/// transports that size per-peer state off datagram contents may rely on
/// either bound.
inline constexpr std::uint64_t kMaxFrameChunkKey = kMaxFramePeerId >> 16;

namespace frame_detail {
inline constexpr std::byte kMagic0{0x55};
inline constexpr std::byte kMagic1{0x50};
}  // namespace frame_detail

/// A successfully parsed frame. `payload` aliases the input buffer.
struct ParsedFrame {
  common::PeerId from;
  std::span<const std::byte> payload;
};

/// Serialises the frame header + payload into `out` (overwriting it).
inline void frame_datagram(common::PeerId from,
                           std::span<const std::byte> payload,
                           std::vector<std::byte>& out) {
  out.clear();
  out.reserve(kFrameHeaderBytes + payload.size());
  out.push_back(frame_detail::kMagic0);
  out.push_back(frame_detail::kMagic1);
  out.push_back(static_cast<std::byte>(kFrameVersion));
  out.push_back(std::byte{0});  // flags
  const std::uint32_t id = from.value();
  for (int shift = 0; shift < 32; shift += 8) {
    out.push_back(static_cast<std::byte>((id >> shift) & 0xFF));
  }
  out.insert(out.end(), payload.begin(), payload.end());
}

/// Parses a framed datagram; nullopt on any malformation (short buffer,
/// bad magic, unknown version, nonzero flags, out-of-range source id).
[[nodiscard]] inline std::optional<ParsedFrame> parse_frame(
    std::span<const std::byte> bytes) {
  if (bytes.size() < kFrameHeaderBytes) return std::nullopt;
  if (bytes[0] != frame_detail::kMagic0 || bytes[1] != frame_detail::kMagic1) {
    return std::nullopt;
  }
  if (static_cast<std::uint8_t>(bytes[2]) != kFrameVersion) {
    return std::nullopt;
  }
  if (bytes[3] != std::byte{0}) return std::nullopt;
  std::uint32_t id = 0;
  for (int i = 0; i < 4; ++i) {
    id |= static_cast<std::uint32_t>(bytes[4 + i]) << (8 * i);
  }
  if (id >= kMaxFramePeerId) return std::nullopt;
  return ParsedFrame{common::PeerId(id), bytes.subspan(kFrameHeaderBytes)};
}

}  // namespace updp2p::net
