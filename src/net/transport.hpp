// Abstract datagram transport for deployed (non-simulated) peers.
//
// The simulators deliver GossipPayload objects in memory; a deployment
// moves *bytes* between processes/hosts. Transport is the seam between the
// two worlds: runtime::PeerRuntime encodes protocol messages with
// gossip::codec and hands the byte strings to a Transport, which only ever
// sees opaque datagrams. Two implementations ship:
//
//   * InprocTransport — deterministic in-process loopback with StreamRng-
//     driven loss and LatencyModel-driven delay (inproc_transport.hpp).
//   * UdpTransport — nonblocking UDP datagrams over a poll()-based event
//     loop (udp_transport.hpp).
//
// Both present the same best-effort, unordered, lossy datagram contract the
// paper assumes of its network ("communication … may employ any
// point-to-point mechanism"): a send can vanish silently, and reliability
// is the runtime layer's job (retry/timeout/backoff, runtime/retry.hpp).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/types.hpp"

namespace updp2p::net {

/// Raw datagram payload bytes (same representation the gossip codec uses).
using DatagramBytes = std::vector<std::byte>;

/// One received datagram, already stripped of transport framing.
struct InboundDatagram {
  common::PeerId from;
  DatagramBytes bytes;
};

/// Per-endpoint transport counters.
struct TransportStats {
  std::uint64_t datagrams_sent = 0;
  std::uint64_t datagrams_received = 0;
  std::uint64_t bytes_sent = 0;
  std::uint64_t bytes_received = 0;
  std::uint64_t send_no_route = 0;    ///< destination not in the directory
  std::uint64_t send_errors = 0;      ///< OS-level send failure
  std::uint64_t send_short_writes = 0;  ///< kernel truncated the datagram
  std::uint64_t frames_rejected = 0;  ///< inbound framing parse failures
  std::uint64_t dropped_offline = 0;  ///< received while not listening
};

/// Best-effort, unordered, lossy point-to-point datagram endpoint bound to
/// one peer identity. Not thread-safe; a PeerRuntime and its Transport live
/// on one event loop.
class Transport {
 public:
  virtual ~Transport() = default;

  /// The peer identity this endpoint sends as.
  [[nodiscard]] virtual common::PeerId self() const noexcept = 0;

  /// Queues `payload` for delivery to `to`. Returns false when the datagram
  /// was observably not sent (no route, OS error); true means "handed to
  /// the network", which still implies nothing about delivery.
  virtual bool send(common::PeerId to, std::span<const std::byte> payload) = 0;

  /// Appends every datagram received since the last drain to `out` and
  /// returns how many were appended. Non-blocking.
  virtual std::size_t drain(std::vector<InboundDatagram>& out) = 0;

  /// Hands a drained datagram's buffer back for reuse once the caller is
  /// done with its bytes. A pooling transport overrides this to park the
  /// capacity for the next drain(); the default drops the buffer. The
  /// contents are dead — only the allocation is recycled.
  virtual void recycle(DatagramBytes&& bytes) { (void)bytes; }

  /// Session control: while not listening the endpoint discards everything
  /// it receives (an offline peer loses messages, §3 — it must recover via
  /// the pull phase, never via a transport-level mailbox).
  virtual void set_listening(bool listening) = 0;
  [[nodiscard]] virtual bool listening() const noexcept = 0;

  [[nodiscard]] virtual const TransportStats& stats() const noexcept = 0;
};

}  // namespace updp2p::net
