#include "net/udp_transport.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>

#include "net/frame.hpp"

namespace updp2p::net {

namespace {

[[nodiscard]] std::string errno_string(const char* what) {
  return std::string(what) + ": " + std::strerror(errno);
}

void set_error(std::string* error, std::string message) {
  if (error != nullptr) *error = std::move(message);
}

}  // namespace

std::unique_ptr<UdpTransport> UdpTransport::open(
    const UdpTransportConfig& config, std::string* error) {
  if (!config.self.is_valid() ||
      config.self.value() >= kMaxFramePeerId) {
    set_error(error, "self peer id out of wire range");
    return nullptr;
  }
  const int fd = ::socket(AF_INET, SOCK_DGRAM, 0);
  if (fd < 0) {
    set_error(error, errno_string("socket"));
    return nullptr;
  }
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    set_error(error, errno_string("fcntl(O_NONBLOCK)"));
    ::close(fd);
    return nullptr;
  }

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(config.bind_port);
  if (::inet_pton(AF_INET, config.bind_host.c_str(), &addr.sin_addr) != 1) {
    set_error(error, "bad bind host: " + config.bind_host);
    ::close(fd);
    return nullptr;
  }
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) < 0) {
    set_error(error, errno_string("bind"));
    ::close(fd);
    return nullptr;
  }
  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &bound_len) < 0) {
    set_error(error, errno_string("getsockname"));
    ::close(fd);
    return nullptr;
  }

  auto transport = std::unique_ptr<UdpTransport>(new UdpTransport(
      config.self, fd, ntohs(bound.sin_port), config.max_datagram_bytes));
  for (const UdpPeerAddress& peer : config.peers) transport->add_route(peer);
  transport->recv_scratch_.resize(config.max_datagram_bytes);
  return transport;
}

UdpTransport::~UdpTransport() {
  if (fd_ >= 0) ::close(fd_);
}

void UdpTransport::add_route(const UdpPeerAddress& peer) {
  in_addr resolved{};
  if (::inet_pton(AF_INET, peer.host.c_str(), &resolved) != 1) return;
  routes_[peer.id] =
      Resolved{resolved.s_addr, htons(peer.port)};
}

bool UdpTransport::send(common::PeerId to, std::span<const std::byte> payload) {
  const auto route = routes_.find(to);
  if (route == routes_.end()) {
    ++stats_.send_no_route;
    return false;
  }
  frame_datagram(self_, payload, frame_scratch_);
  if (frame_scratch_.size() > max_datagram_bytes_) {
    ++stats_.send_errors;
    return false;
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = route->second.ipv4_be;
  addr.sin_port = route->second.port_be;
  ssize_t sent = -1;
  do {
    sent = ::sendto(fd_, frame_scratch_.data(), frame_scratch_.size(), 0,
                    reinterpret_cast<const sockaddr*>(&addr), sizeof(addr));
  } while (sent < 0 && errno == EINTR);
  if (sent < 0) {
    ++stats_.send_errors;
    return false;
  }
  if (static_cast<std::size_t>(sent) != frame_scratch_.size()) {
    // The kernel accepted a truncated datagram; the receiver's frame
    // parser will reject whatever arrives. A drop, not an OS error.
    ++stats_.send_short_writes;
    return false;
  }
  ++stats_.datagrams_sent;
  stats_.bytes_sent += frame_scratch_.size();
  return true;
}

std::size_t UdpTransport::drain(std::vector<InboundDatagram>& out) {
  std::size_t appended = 0;
  for (;;) {
    const ssize_t received =
        ::recv(fd_, recv_scratch_.data(), recv_scratch_.size(), 0);
    if (received < 0) {
      // EAGAIN/EWOULDBLOCK: drained. Anything else (EINTR from a signal,
      // ECONNREFUSED bounced back from a dead peer's port) is not a
      // received datagram; swallow and keep draining until empty.
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      continue;
    }
    if (!listening_) {
      ++stats_.dropped_offline;
      continue;
    }
    const auto frame = parse_frame(
        std::span<const std::byte>(recv_scratch_.data(),
                                   static_cast<std::size_t>(received)));
    if (!frame) {
      ++stats_.frames_rejected;
      continue;
    }
    ++stats_.datagrams_received;
    stats_.bytes_received += static_cast<std::uint64_t>(received);
    DatagramBytes bytes;
    if (!recv_pool_.empty()) {
      bytes = std::move(recv_pool_.back());
      recv_pool_.pop_back();
      ++recv_buffers_reused_;
    }
    bytes.assign(frame->payload.begin(), frame->payload.end());
    out.push_back(InboundDatagram{frame->from, std::move(bytes)});
    ++appended;
  }
  return appended;
}

void UdpTransport::recycle(DatagramBytes&& bytes) {
  if (bytes.capacity() == 0) return;
  recv_pool_.push_back(std::move(bytes));
}

bool UdpTransport::wait_readable(int timeout_ms) {
  // A signal (SIGCHLD from a harness reaping daemons, SIGALRM from a
  // profiler) must not turn the remainder of the wait into a spurious
  // timeout: on EINTR, recompute the remaining budget and park again.
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::milliseconds(timeout_ms < 0 ? 0 : timeout_ms);
  int remaining_ms = timeout_ms < 0 ? 0 : timeout_ms;
  for (;;) {
    pollfd pfd{fd_, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, remaining_ms);
    if (ready < 0 && errno == EINTR) {
      const auto now = std::chrono::steady_clock::now();
      if (now >= deadline) return false;
      remaining_ms = static_cast<int>(
          std::chrono::duration_cast<std::chrono::milliseconds>(deadline -
                                                                now)
              .count() +
          1);
      continue;
    }
    return ready > 0 && (pfd.revents & POLLIN) != 0;
  }
}

}  // namespace updp2p::net
