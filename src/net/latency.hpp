// Latency models for the event-driven simulator and the live transports.
//
// The round-synchronous analysis abstracts latency into "rounds"; the
// event-driven engine (pull phase, overlapping push/pull) needs concrete
// per-message delays. Paper §4.1 notes that real networks interleave rounds
// — these models let tests exercise exactly that. The inproc live transport
// reuses them for its deterministic delivery schedule.
//
// Sampling is written once against the shared distribution mixin
// (common::RngOps) and exposed through two virtual overloads, one per
// engine: the sequential Rng (event simulator) and the counter-based
// StreamRng (per-link live-transport streams). Given identical raw engine
// outputs, both overloads produce bit-identical samples — the same
// contract RngOps gives everything else in the tree.
#pragma once

#include <memory>

#include "common/ensure.hpp"
#include "common/rng.hpp"
#include "common/types.hpp"

namespace updp2p::net {

/// Strategy for per-message one-way delay.
class LatencyModel {
 public:
  virtual ~LatencyModel() = default;
  [[nodiscard]] virtual common::SimTime sample(common::Rng& rng) const = 0;
  [[nodiscard]] virtual common::SimTime sample(common::StreamRng& rng)
      const = 0;
};

/// Every message takes exactly `delay`.
class ConstantLatency final : public LatencyModel {
 public:
  explicit ConstantLatency(common::SimTime delay) : delay_(delay) {
    UPDP2P_ENSURE(delay >= 0.0, "latency must be non-negative");
  }
  [[nodiscard]] common::SimTime sample(common::Rng& /*rng*/) const override {
    return delay_;
  }
  [[nodiscard]] common::SimTime sample(
      common::StreamRng& /*rng*/) const override {
    return delay_;
  }

 private:
  common::SimTime delay_;
};

/// Uniform delay in [lo, hi] — jittered rounds.
class UniformLatency final : public LatencyModel {
 public:
  UniformLatency(common::SimTime lo, common::SimTime hi) : lo_(lo), hi_(hi) {
    UPDP2P_ENSURE(lo >= 0.0 && hi >= lo, "require 0 <= lo <= hi");
  }
  [[nodiscard]] common::SimTime sample(common::Rng& rng) const override {
    return sample_impl(rng);
  }
  [[nodiscard]] common::SimTime sample(common::StreamRng& rng) const override {
    return sample_impl(rng);
  }

 private:
  template <typename Engine>
  [[nodiscard]] common::SimTime sample_impl(
      common::RngOps<Engine>& rng) const {
    return lo_ + (hi_ - lo_) * rng.uniform01();
  }

  common::SimTime lo_;
  common::SimTime hi_;
};

/// Heavy-ish tail: base propagation delay plus exponential queueing term.
class ExponentialLatency final : public LatencyModel {
 public:
  ExponentialLatency(common::SimTime base, common::SimTime mean_extra)
      : base_(base), mean_extra_(mean_extra) {
    UPDP2P_ENSURE(base >= 0.0 && mean_extra > 0.0,
                  "base >= 0 and mean_extra > 0 required");
  }
  [[nodiscard]] common::SimTime sample(common::Rng& rng) const override {
    return sample_impl(rng);
  }
  [[nodiscard]] common::SimTime sample(common::StreamRng& rng) const override {
    return sample_impl(rng);
  }

 private:
  template <typename Engine>
  [[nodiscard]] common::SimTime sample_impl(
      common::RngOps<Engine>& rng) const {
    return base_ + rng.exponential(1.0 / mean_extra_);
  }

  common::SimTime base_;
  common::SimTime mean_extra_;
};

}  // namespace updp2p::net
