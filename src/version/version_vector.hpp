// Version vectors for causal comparison and anti-entropy reconciliation.
//
// Paper §3: pull-phase peers "inquire for missed updates based on version
// vectors". The vector maps an updating peer to the count of updates it has
// originated; component-wise comparison classifies two replica states as
// equal, dominated, dominating or concurrent.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>

#include "common/types.hpp"

namespace updp2p::version {

enum class Causality {
  kEqual,        ///< identical histories
  kDominates,    ///< this vector has seen strictly more
  kDominatedBy,  ///< the other vector has seen strictly more
  kConcurrent,   ///< conflicting histories (each saw something the other missed)
};

[[nodiscard]] const char* to_string(Causality c) noexcept;

/// Sparse version vector. Absent entries are implicitly zero, so comparing
/// vectors over disjoint updater sets behaves correctly.
class VersionVector {
 public:
  VersionVector() = default;

  /// Records one more update originated by `peer`; returns the new counter.
  std::uint64_t increment(common::PeerId peer);

  /// Sets the counter for `peer` to max(current, counter).
  void observe(common::PeerId peer, std::uint64_t counter);

  [[nodiscard]] std::uint64_t get(common::PeerId peer) const noexcept;

  /// Component-wise maximum (join in the lattice of histories).
  void merge(const VersionVector& other);

  [[nodiscard]] Causality compare(const VersionVector& other) const noexcept;

  /// True iff every event in this vector is also covered by `other`.
  [[nodiscard]] bool covered_by(const VersionVector& other) const noexcept {
    const Causality c = compare(other);
    return c == Causality::kEqual || c == Causality::kDominatedBy;
  }

  [[nodiscard]] bool empty() const noexcept { return counters_.empty(); }
  [[nodiscard]] std::size_t entry_count() const noexcept {
    return counters_.size();
  }
  /// Total number of update events summarised by this vector.
  [[nodiscard]] std::uint64_t total_events() const noexcept;

  [[nodiscard]] const std::map<common::PeerId, std::uint64_t>& entries()
      const noexcept {
    return counters_;
  }

  friend bool operator==(const VersionVector&, const VersionVector&) = default;

  [[nodiscard]] std::string to_string() const;

 private:
  std::map<common::PeerId, std::uint64_t> counters_;
};

std::ostream& operator<<(std::ostream& os, const VersionVector& vv);

}  // namespace updp2p::version
