#include "version/store.hpp"

#include <algorithm>
#include <unordered_set>

#include "common/ensure.hpp"

namespace updp2p::version {

const char* to_string(ApplyOutcome o) noexcept {
  switch (o) {
    case ApplyOutcome::kApplied: return "applied";
    case ApplyOutcome::kDuplicate: return "duplicate";
    case ApplyOutcome::kObsolete: return "obsolete";
    case ApplyOutcome::kCoexisting: return "coexisting";
  }
  return "?";
}

void VersionedStore::toggle_digest(const VersionId& id) noexcept {
  content_digest_.hi ^= id.digest().hi;
  content_digest_.lo ^= id.digest().lo;
}

ApplyOutcome VersionedStore::apply(VersionedValue value) {
  auto& slot = items_[value.key];

  bool dominates_some = false;
  for (const auto& existing : slot) {
    if (existing.id == value.id) return ApplyOutcome::kDuplicate;
    switch (value.history.compare(existing.history)) {
      case Causality::kDominatedBy:
        return ApplyOutcome::kObsolete;
      case Causality::kEqual:
        // Same causal history but a different id: a sibling write collapsed
        // into identical vectors cannot dominate; treat as obsolete to keep
        // apply idempotent and the maximal set minimal.
        return ApplyOutcome::kObsolete;
      case Causality::kDominates:
        dominates_some = true;
        break;
      case Causality::kConcurrent:
        break;
    }
  }

  // Remove every version the newcomer dominates, keep concurrents.
  std::erase_if(slot, [this, &value](const VersionedValue& existing) {
    if (value.history.compare(existing.history) == Causality::kDominates) {
      toggle_digest(existing.id);
      return true;
    }
    return false;
  });

  summary_.merge(value.history);
  toggle_digest(value.id);
  const bool coexisting = !slot.empty() && !dominates_some;
  slot.push_back(std::move(value));
  return coexisting ? ApplyOutcome::kCoexisting : ApplyOutcome::kApplied;
}

std::vector<VersionedValue> VersionedStore::versions(
    std::string_view key) const {
  const auto it = items_.find(key);
  return it == items_.end() ? std::vector<VersionedValue>{} : it->second;
}

namespace {
/// Total-order winner among concurrent versions: most events first, then
/// VersionId as an arbitrary-but-global tiebreak. Every replica applying
/// this rule to the same version set picks the same winner (§4.4).
const VersionedValue* pick_winner(const std::vector<VersionedValue>& versions) {
  const VersionedValue* best = nullptr;
  for (const auto& v : versions) {
    if (best == nullptr ||
        v.history.total_events() > best->history.total_events() ||
        (v.history.total_events() == best->history.total_events() &&
         v.id > best->id)) {
      best = &v;
    }
  }
  return best;
}
}  // namespace

std::optional<VersionedValue> VersionedStore::read(std::string_view key) const {
  const auto it = items_.find(key);
  if (it == items_.end() || it->second.empty()) return std::nullopt;
  const VersionedValue* winner = pick_winner(it->second);
  if (winner->tombstone) return std::nullopt;
  return *winner;
}

bool VersionedStore::is_deleted(std::string_view key) const {
  const auto it = items_.find(key);
  if (it == items_.end() || it->second.empty()) return false;
  return pick_winner(it->second)->tombstone;
}

std::vector<VersionedValue> VersionedStore::missing_given(
    const VersionVector& remote_summary) const {
  std::vector<VersionedValue> out;
  for (const auto& [key, versions] : items_) {
    for (const auto& v : versions) {
      if (!v.history.covered_by(remote_summary)) out.push_back(v);
    }
  }
  return out;
}

std::vector<VersionedValue> VersionedStore::missing_for(
    std::span<const VersionId> remote_have) const {
  const std::unordered_set<VersionId> have(remote_have.begin(),
                                           remote_have.end());
  std::vector<VersionedValue> out;
  for (const auto& [key, versions] : items_) {
    for (const auto& v : versions) {
      // Not stored remotely: ship; the remote's apply() arbitrates (keeps
      // concurrents, drops dominated).
      if (!have.contains(v.id)) out.push_back(v);
    }
  }
  return out;
}

std::vector<VersionId> VersionedStore::stored_ids() const {
  std::vector<VersionId> out;
  for (const auto& [key, versions] : items_) {
    for (const auto& v : versions) out.push_back(v.id);
  }
  return out;
}

std::vector<VersionedValue> VersionedStore::all_versions() const {
  std::vector<VersionedValue> out;
  out.reserve(version_count());
  for (const auto& [key, versions] : items_) {
    out.insert(out.end(), versions.begin(), versions.end());
  }
  return out;
}

std::size_t VersionedStore::gc_tombstones(common::SimTime now,
                                          common::SimTime retention) {
  std::size_t collected = 0;
  for (auto it = items_.begin(); it != items_.end();) {
    auto& versions = it->second;
    collected += static_cast<std::size_t>(std::erase_if(
        versions, [this, now, retention](const VersionedValue& v) {
          if (v.tombstone && now - v.written_at > retention) {
            toggle_digest(v.id);
            return true;
          }
          return false;
        }));
    it = versions.empty() ? items_.erase(it) : std::next(it);
  }
  return collected;
}

std::size_t VersionedStore::version_count() const noexcept {
  std::size_t total = 0;
  for (const auto& [key, versions] : items_) total += versions.size();
  return total;
}

std::vector<std::string> VersionedStore::keys() const {
  std::vector<std::string> out;
  out.reserve(items_.size());
  for (const auto& [key, versions] : items_) out.push_back(key);
  return out;
}

VersionedValue LocalWriter::make(VersionedStore& store, std::string_view key,
                                 std::string payload, bool tombstone,
                                 common::SimTime now) {
  VersionedValue value;
  value.key = std::string(key);
  value.payload = std::move(payload);
  value.tombstone = tombstone;
  value.written_at = now;
  // The new write causally follows everything this replica has of the key.
  for (const auto& existing : store.versions(key)) {
    value.history.merge(existing.history);
  }
  value.history.increment(self_);
  value.id = id_factory_.mint(now);
  const ApplyOutcome outcome = store.apply(value);
  UPDP2P_ENSURE(outcome == ApplyOutcome::kApplied,
                "a fresh local write must dominate the local maximal set");
  return value;
}

VersionedValue LocalWriter::write(VersionedStore& store, std::string_view key,
                                  std::string payload, common::SimTime now) {
  return make(store, key, std::move(payload), /*tombstone=*/false, now);
}

VersionedValue LocalWriter::erase(VersionedStore& store, std::string_view key,
                                  common::SimTime now) {
  return make(store, key, std::string{}, /*tombstone=*/true, now);
}

}  // namespace updp2p::version
