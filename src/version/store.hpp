// Multi-version replica store with tombstones and anti-entropy deltas.
//
// Paper §3: update conflicts are rare and conflicting writes "may be treated
// as distinct and coexist as different versions"; deletions "may use
// conventional tombstones and death certificates". The store keeps, per key,
// the set of causally-maximal versions, supports dominance-based apply, and
// produces the delta a remote peer is missing given its summary vector —
// which is exactly what the pull phase exchanges.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/types.hpp"
#include "version/version_id.hpp"
#include "version/version_vector.hpp"

namespace updp2p::version {

/// One immutable version of one data item.
struct VersionedValue {
  std::string key;
  std::string payload;       ///< application data; ignored for tombstones
  VersionId id;              ///< universally unique version identifier
  VersionVector history;     ///< causal history up to and including this write
  bool tombstone = false;    ///< death certificate for a deletion
  common::SimTime written_at = 0.0;  ///< for tombstone retention

  friend bool operator==(const VersionedValue&, const VersionedValue&) = default;
};

/// Outcome of applying a received version (value semantics, no exceptions —
/// all four outcomes are normal protocol events).
enum class ApplyOutcome {
  kApplied,     ///< stored; replaced every version it dominates
  kDuplicate,   ///< byte-identical version already present
  kObsolete,    ///< dominated by (or equal history to) an existing version
  kCoexisting,  ///< concurrent with existing versions; all retained
};

[[nodiscard]] const char* to_string(ApplyOutcome o) noexcept;

class VersionedStore {
 public:
  /// Applies a version received from the network (push or pull).
  ApplyOutcome apply(VersionedValue value);

  /// All causally-maximal live + tombstone versions of `key`
  /// (empty vector if unknown).
  [[nodiscard]] std::vector<VersionedValue> versions(std::string_view key) const;

  /// Deterministic winner among the maximal versions of `key` — the version
  /// with the largest total event count, ties broken by VersionId. This is
  /// the "version scheme for identifying latest updates" of §4.4. Returns
  /// nullopt for unknown keys and for keys whose winner is a tombstone.
  [[nodiscard]] std::optional<VersionedValue> read(std::string_view key) const;

  /// True iff the key exists and its winning version is a tombstone.
  [[nodiscard]] bool is_deleted(std::string_view key) const;

  /// Merge of the histories of every stored version: "everything this
  /// replica has seen". Exchanged first in the pull phase.
  [[nodiscard]] const VersionVector& summary() const noexcept { return summary_; }

  /// Versions whose history is not covered by `remote_summary` — i.e. what
  /// a peer summarising as `remote_summary` is missing from this store.
  ///
  /// CAUTION: summary coverage alone has a blind spot — a version that is
  /// *covered* by the remote summary but was never *stored* remotely (a
  /// concurrent sibling the remote only saw reflected in merged histories)
  /// is skipped, and two replicas can disagree forever while their
  /// summaries are equal. Reconciliation should use the `have` overload.
  [[nodiscard]] std::vector<VersionedValue> missing_given(
      const VersionVector& remote_summary) const;

  /// Precise delta: every version whose id is not in `remote_have` (the
  /// ids the remote currently stores). Shipping is safe-by-apply — the
  /// receiver's dominance check discards anything obsolete and keeps
  /// concurrents — which closes the blind spot above. (The cross-key
  /// summary cannot be used to trim this list soundly: it may be inflated
  /// by other keys' histories.)
  [[nodiscard]] std::vector<VersionedValue> missing_for(
      std::span<const VersionId> remote_have) const;

  /// Ids of every stored version (live and tombstoned), for the pull
  /// request's `have` list.
  [[nodiscard]] std::vector<VersionId> stored_ids() const;

  /// Every stored version (live and tombstoned), key-ordered. This is the
  /// store's full durable state: re-applying the list to an empty store
  /// reproduces items, summary and content digest exactly (the maximal
  /// versions' merged histories ARE the summary). Snapshot export.
  [[nodiscard]] std::vector<VersionedValue> all_versions() const;

  /// Order-insensitive digest of the stored version-id set. Two stores with
  /// equal digests hold the same versions (up to the digest's collision
  /// probability), so reconciliation can short-circuit: the common
  /// in-sync-already pull costs one 16-byte comparison instead of shipping
  /// id lists. Maintained incrementally; O(1).
  [[nodiscard]] const common::Digest128& content_digest() const noexcept {
    return content_digest_;
  }

  /// Drops tombstones older than `retention` (death-certificate expiry).
  /// Returns the number of tombstones collected.
  std::size_t gc_tombstones(common::SimTime now, common::SimTime retention);

  [[nodiscard]] std::size_t key_count() const noexcept { return items_.size(); }
  [[nodiscard]] std::size_t version_count() const noexcept;
  [[nodiscard]] std::vector<std::string> keys() const;

 private:
  void toggle_digest(const VersionId& id) noexcept;

  // Maximal versions per key, invariant: pairwise concurrent.
  std::map<std::string, std::vector<VersionedValue>, std::less<>> items_;
  VersionVector summary_;
  // XOR of stored version-id digests: insertion == removal == toggle.
  common::Digest128 content_digest_{};
};

/// Convenience for originating local writes: builds a version that dominates
/// every maximal version currently stored for the key, stamps it with a
/// fresh VersionId, applies it locally and returns it for propagation.
class LocalWriter {
 public:
  LocalWriter(common::PeerId self, common::Rng rng)
      : self_(self), id_factory_(self, rng) {}

  VersionedValue write(VersionedStore& store, std::string_view key,
                       std::string payload, common::SimTime now);

  VersionedValue erase(VersionedStore& store, std::string_view key,
                       common::SimTime now);

  [[nodiscard]] common::PeerId self() const noexcept { return self_; }

 private:
  VersionedValue make(VersionedStore& store, std::string_view key,
                      std::string payload, bool tombstone, common::SimTime now);

  common::PeerId self_;
  VersionIdFactory id_factory_;
};

}  // namespace updp2p::version
