#include "version/version_id.hpp"

#include <array>
#include <bit>
#include <ostream>

namespace updp2p::version {

std::ostream& operator<<(std::ostream& os, const VersionId& id) {
  return os << id.digest();
}

VersionId VersionIdFactory::mint(common::SimTime logical_time) noexcept {
  const std::array<std::uint64_t, 4> words{
      static_cast<std::uint64_t>(owner_.value()),
      std::bit_cast<std::uint64_t>(logical_time),
      rng_(),           // the "large random number"
      ++counter_,       // monotone tie-breaker within one peer/instant
  };
  return VersionId(common::digest128(words));
}

}  // namespace updp2p::version
