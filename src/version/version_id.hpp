// Universally-unique version identifiers.
//
// Paper §3 footnote 1: a version identifier is "computed locally by applying
// a cryptographically secure hash function to the concatenated values of the
// current date and time, the current IP address and a large random number".
// In simulation, (logical timestamp, peer id, random nonce) carry the same
// uniqueness-bearing entropy; see DESIGN.md substitution table.
#pragma once

#include <compare>
#include <iosfwd>
#include <string>

#include "common/hash.hpp"
#include "common/rng.hpp"
#include "common/types.hpp"

namespace updp2p::version {

/// Opaque 128-bit version identifier; totally ordered only for container
/// use — ordering carries no causal meaning (that is the version vector's
/// job).
class VersionId {
 public:
  constexpr VersionId() noexcept = default;
  constexpr explicit VersionId(common::Digest128 digest) noexcept
      : digest_(digest) {}

  [[nodiscard]] constexpr const common::Digest128& digest() const noexcept {
    return digest_;
  }
  [[nodiscard]] constexpr bool is_null() const noexcept {
    return digest_ == common::Digest128{};
  }
  [[nodiscard]] std::string to_string() const { return digest_.to_hex(); }

  friend constexpr auto operator<=>(const VersionId&,
                                    const VersionId&) noexcept = default;

 private:
  common::Digest128 digest_{};
};

std::ostream& operator<<(std::ostream& os, const VersionId& id);

/// Mints fresh version ids for one peer. Deterministic given the seed rng.
class VersionIdFactory {
 public:
  VersionIdFactory(common::PeerId owner, common::Rng rng) noexcept
      : owner_(owner), rng_(rng) {}

  /// `logical_time` mirrors the paper's date/time ingredient.
  [[nodiscard]] VersionId mint(common::SimTime logical_time) noexcept;

 private:
  common::PeerId owner_;
  common::Rng rng_;
  std::uint64_t counter_ = 0;
};

}  // namespace updp2p::version

template <>
struct std::hash<updp2p::version::VersionId> {
  std::size_t operator()(const updp2p::version::VersionId& id) const noexcept {
    return std::hash<updp2p::common::Digest128>{}(id.digest());
  }
};
