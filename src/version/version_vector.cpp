#include "version/version_vector.hpp"

#include <algorithm>
#include <ostream>
#include <sstream>

namespace updp2p::version {

const char* to_string(Causality c) noexcept {
  switch (c) {
    case Causality::kEqual: return "equal";
    case Causality::kDominates: return "dominates";
    case Causality::kDominatedBy: return "dominated-by";
    case Causality::kConcurrent: return "concurrent";
  }
  return "?";
}

std::uint64_t VersionVector::increment(common::PeerId peer) {
  return ++counters_[peer];
}

void VersionVector::observe(common::PeerId peer, std::uint64_t counter) {
  if (counter == 0) return;  // zero entries stay implicit
  auto& slot = counters_[peer];
  slot = std::max(slot, counter);
}

std::uint64_t VersionVector::get(common::PeerId peer) const noexcept {
  const auto it = counters_.find(peer);
  return it == counters_.end() ? 0 : it->second;
}

void VersionVector::merge(const VersionVector& other) {
  for (const auto& [peer, counter] : other.counters_) observe(peer, counter);
}

Causality VersionVector::compare(const VersionVector& other) const noexcept {
  bool some_greater = false;
  bool some_less = false;
  // Walk both sorted maps in lockstep; a missing entry counts as zero.
  auto it_a = counters_.begin();
  auto it_b = other.counters_.begin();
  while (it_a != counters_.end() || it_b != other.counters_.end()) {
    if (it_b == other.counters_.end() ||
        (it_a != counters_.end() && it_a->first < it_b->first)) {
      if (it_a->second > 0) some_greater = true;
      ++it_a;
    } else if (it_a == counters_.end() || it_b->first < it_a->first) {
      if (it_b->second > 0) some_less = true;
      ++it_b;
    } else {
      if (it_a->second > it_b->second) some_greater = true;
      if (it_a->second < it_b->second) some_less = true;
      ++it_a;
      ++it_b;
    }
    if (some_greater && some_less) return Causality::kConcurrent;
  }
  if (some_greater) return Causality::kDominates;
  if (some_less) return Causality::kDominatedBy;
  return Causality::kEqual;
}

std::uint64_t VersionVector::total_events() const noexcept {
  std::uint64_t total = 0;
  for (const auto& [peer, counter] : counters_) total += counter;
  return total;
}

std::string VersionVector::to_string() const {
  std::ostringstream out;
  out << *this;
  return out.str();
}

std::ostream& operator<<(std::ostream& os, const VersionVector& vv) {
  os << '{';
  bool first = true;
  for (const auto& [peer, counter] : vv.entries()) {
    if (!first) os << ", ";
    first = false;
    os << peer.value() << ':' << counter;
  }
  return os << '}';
}

}  // namespace updp2p::version
