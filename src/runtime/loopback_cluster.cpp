#include "runtime/loopback_cluster.hpp"

#include "common/ensure.hpp"

namespace updp2p::runtime {

namespace {
/// Purpose key for each peer's bootstrap view sample.
constexpr std::uint64_t kBootstrapPurpose = 0xB007;
}  // namespace

LoopbackCluster::LoopbackCluster(LoopbackClusterConfig config)
    : config_([&config] {
        // Key the network off the runtime seed unless the caller chose one.
        if (config.network.seed == net::InprocNetworkConfig{}.seed) {
          config.network.seed = config.runtime.seed;
        }
        return config;
      }()),
      network_(config_.network) {
  UPDP2P_ENSURE(config_.population > 0, "cluster needs at least one peer");
  peers_.reserve(config_.population);
  for (std::size_t i = 0; i < config_.population; ++i) {
    Peer peer;
    peer.transport = network_.attach(common::PeerId(
        static_cast<common::PeerId::rep_type>(i)));
    peer.runtime =
        std::make_unique<PeerRuntime>(config_.runtime, *peer.transport);
    peers_.push_back(std::move(peer));
  }

  std::vector<common::PeerId> view;
  for (std::size_t i = 0; i < config_.population; ++i) {
    const auto self = static_cast<common::PeerId::rep_type>(i);
    view.clear();
    if (config_.initial_view_size == 0) {
      for (std::size_t j = 0; j < config_.population; ++j) {
        if (j != i) {
          view.emplace_back(static_cast<common::PeerId::rep_type>(j));
        }
      }
    } else {
      common::StreamRng rng(config_.runtime.seed, self, kBootstrapPurpose);
      // Sample from [0, population-1) and shift past self so the sample
      // stays uniform over the other peers.
      const auto others =
          static_cast<std::uint32_t>(config_.population - 1);
      const auto want = static_cast<std::uint32_t>(
          std::min<std::size_t>(config_.initial_view_size, others));
      for (const std::uint32_t pick :
           rng.sample_without_replacement(others, want)) {
        view.emplace_back(pick >= self ? pick + 1 : pick);
      }
    }
    peers_[i].runtime->bootstrap(view);
  }
}

std::optional<version::VersionId> LoopbackCluster::publish(
    common::PeerId from, std::string_view key, std::string payload) {
  return peer(from).publish(key, std::move(payload));
}

void LoopbackCluster::set_online(common::PeerId id, bool online) {
  PeerRuntime& runtime = peer(id);
  if (online) {
    runtime.go_online();
  } else {
    runtime.go_offline();
  }
}

void LoopbackCluster::step(common::SimTime to) {
  network_.advance_to(to);
  for (Peer& peer : peers_) peer.runtime->poll(to);
  now_ = to;
}

void LoopbackCluster::run_until(common::SimTime until, common::SimTime dt) {
  UPDP2P_ENSURE(dt > 0.0, "step size must be positive");
  while (now_ < until) {
    step(std::min(now_ + dt, until));
  }
}

bool LoopbackCluster::run_until_aware(const version::VersionId& id,
                                      common::SimTime deadline,
                                      common::SimTime dt) {
  UPDP2P_ENSURE(dt > 0.0, "step size must be positive");
  while (!all_online_aware(id)) {
    if (now_ >= deadline) return false;
    step(std::min(now_ + dt, deadline));
  }
  return true;
}

std::size_t LoopbackCluster::aware_count(const version::VersionId& id) const {
  std::size_t count = 0;
  for (const Peer& peer : peers_) {
    if (peer.runtime->node().knows_version(id)) ++count;
  }
  return count;
}

bool LoopbackCluster::all_online_aware(const version::VersionId& id) const {
  for (const Peer& peer : peers_) {
    if (peer.runtime->online() && !peer.runtime->node().knows_version(id)) {
      return false;
    }
  }
  return true;
}

LoopbackCluster::ClusterTotals LoopbackCluster::totals() const {
  ClusterTotals totals;
  for (const Peer& peer : peers_) {
    const RuntimeStats& stats = peer.runtime->stats();
    totals.datagrams_out += stats.datagrams_out;
    totals.retransmits += stats.retransmits;
    totals.retries_cancelled += stats.retries_cancelled;
    totals.retries_exhausted += stats.retries_exhausted;
    totals.decode_errors += stats.decode_errors;
    totals.frames_reused += stats.frames_reused;
    totals.retransmit_reencodes += stats.retransmit_reencodes;
  }
  return totals;
}

}  // namespace updp2p::runtime
