#include "runtime/timer_wheel.hpp"

#include <cmath>

#include "common/ensure.hpp"

namespace updp2p::runtime {

TimerWheel::TimerWheel(common::SimTime tick_duration, std::size_t slot_count)
    : tick_duration_(tick_duration),
      slots_(slot_count == 0 ? 1 : slot_count) {
  UPDP2P_ENSURE(tick_duration > 0.0, "tick duration must be positive");
}

std::uint64_t TimerWheel::tick_ceil(common::SimTime at) const noexcept {
  std::uint64_t tick = 0;
  if (at > 0.0) {
    tick = static_cast<std::uint64_t>(std::ceil(at / tick_duration_));
  }
  // A deadline at or before the current tick fires on the next advance:
  // timers never fire inside schedule_*, only inside advance.
  return tick <= current_tick_ ? current_tick_ + 1 : tick;
}

TimerWheel::TimerId TimerWheel::schedule_at(common::SimTime deadline,
                                            Callback callback) {
  UPDP2P_ENSURE(static_cast<bool>(callback), "timer callback must be set");
  const std::uint64_t tick = tick_ceil(deadline);
  const TimerId id = next_id_++;
  slots_[tick % slots_.size()].push_back(Entry{id, tick, std::move(callback)});
  live_.emplace(id, tick);
  return id;
}

TimerWheel::TimerId TimerWheel::schedule_after(common::SimTime delay,
                                               Callback callback) {
  UPDP2P_ENSURE(delay >= 0.0, "timer delay must be non-negative");
  return schedule_at(now_ + delay, std::move(callback));
}

bool TimerWheel::cancel(TimerId id) { return live_.erase(id) > 0; }

void TimerWheel::advance(common::SimTime now) {
  UPDP2P_ENSURE(now >= now_, "timer wheel time must be monotone");
  UPDP2P_ENSURE(!advancing_scratch_in_use_, "advance must not be reentered");
  advancing_scratch_in_use_ = true;
  now_ = now;
  const auto target_tick =
      static_cast<std::uint64_t>(now / tick_duration_);
  while (current_tick_ < target_tick) {
    ++current_tick_;
    std::vector<Entry>& slot = slots_[current_tick_ % slots_.size()];
    due_scratch_.clear();
    std::size_t kept = 0;
    for (Entry& entry : slot) {
      const auto it = live_.find(entry.id);
      if (it == live_.end()) continue;  // cancelled; purge lazily
      if (entry.deadline_tick != current_tick_) {
        // A later revolution of the wheel; keep in place (absolute ticks
        // make cascading unnecessary).
        slot[kept++] = std::move(entry);
        continue;
      }
      due_scratch_.push_back(std::move(entry));
    }
    slot.resize(kept);
    const common::SimTime tick_time =
        static_cast<common::SimTime>(current_tick_) * tick_duration_;
    for (Entry& entry : due_scratch_) {
      // A due sibling fired earlier this tick may have cancelled us; the
      // live_ erase doubles as the fire-once guard.
      if (live_.erase(entry.id) == 0) continue;
      entry.callback(tick_time);
    }
  }
  advancing_scratch_in_use_ = false;
}

std::optional<common::SimTime> TimerWheel::next_deadline() const {
  if (live_.empty()) return std::nullopt;
  std::uint64_t min_tick = ~std::uint64_t{0};
  for (const auto& [id, tick] : live_) {
    if (tick < min_tick) min_tick = tick;
  }
  return static_cast<common::SimTime>(min_tick) * tick_duration_;
}

}  // namespace updp2p::runtime
