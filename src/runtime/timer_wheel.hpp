// Monotonic hashed timer wheel.
//
// PeerRuntime needs many short-lived timers (one per in-flight retransmit,
// plus the round cadence) with O(1) schedule/cancel. A hashed wheel fits:
// time is quantised into ticks, each tick hashes to one of `slot_count`
// slots, and timers whose deadline lies more than one wheel revolution out
// simply stay in their slot until the wheel comes around to their tick
// (deadline ticks are stored absolutely, so no cascade pass is needed).
//
// Determinism contract: timers fire in (deadline tick, schedule order), and
// time only moves forward (advance enforces monotonicity). A deadline in
// the past fires on the next advance. Callbacks may schedule and cancel
// timers freely — timers scheduled for ticks the current advance has not
// passed yet fire within the same advance call.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/types.hpp"

namespace updp2p::runtime {

class TimerWheel {
 public:
  using TimerId = std::uint64_t;
  /// Never returned by schedule_*; safe "no timer" sentinel for callers.
  static constexpr TimerId kInvalidTimer = 0;
  using Callback = std::function<void(common::SimTime now)>;

  explicit TimerWheel(common::SimTime tick_duration = 0.05,
                      std::size_t slot_count = 256);

  /// Schedules `callback` to fire at virtual time `deadline` (or on the
  /// next advance if the deadline already passed).
  [[nodiscard]] TimerId schedule_at(common::SimTime deadline,
                                    Callback callback);
  /// Schedules relative to the wheel's current time.
  [[nodiscard]] TimerId schedule_after(common::SimTime delay,
                                       Callback callback);

  /// Cancels a pending timer; returns false when the id is unknown,
  /// already fired, or already cancelled.
  bool cancel(TimerId id);

  /// Advances virtual time to `now` (monotone), firing every due timer in
  /// (deadline tick, schedule order).
  void advance(common::SimTime now);

  [[nodiscard]] common::SimTime now() const noexcept { return now_; }
  [[nodiscard]] std::size_t pending() const noexcept { return live_.size(); }
  /// Earliest pending fire time (tick-quantised); nullopt when idle. Linear
  /// in the number of pending timers — meant for event-loop sleep sizing,
  /// not hot paths.
  [[nodiscard]] std::optional<common::SimTime> next_deadline() const;

 private:
  struct Entry {
    TimerId id = kInvalidTimer;
    std::uint64_t deadline_tick = 0;
    Callback callback;
  };

  [[nodiscard]] std::uint64_t tick_ceil(common::SimTime at) const noexcept;

  common::SimTime tick_duration_;
  std::vector<std::vector<Entry>> slots_;
  /// Pending timers: id -> absolute deadline tick. Source of truth for
  /// liveness (cancel is a lazy erase here; slots purge on sweep).
  std::unordered_map<TimerId, std::uint64_t> live_;
  std::uint64_t current_tick_ = 0;  ///< all ticks <= this have fired
  common::SimTime now_ = 0.0;
  TimerId next_id_ = 1;
  std::vector<Entry> due_scratch_;  ///< reused per-tick fire buffer
  bool advancing_scratch_in_use_ = false;  ///< reentrancy guard for advance
};

}  // namespace updp2p::runtime
