// LoopbackCluster — N PeerRuntimes over one deterministic InprocNetwork.
//
// The single-process analogue of the multi-process UDP harness: every peer
// is a full PeerRuntime (codec, timer wheel, retry/backoff) but datagrams
// travel through the virtual-time inproc switch, so a run is a pure
// function of (config, driver calls). This is the adapter that lets the
// live runtime be golden-tested next to the simulators: the same
// ReplicaNode type, the same wire bytes, a pinned outcome.
//
// Churn is driven externally (set_online), matching the ISSUE's contract
// that session control comes from the orchestrator, not from inside the
// runtime.
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "net/inproc_transport.hpp"
#include "runtime/peer_runtime.hpp"

namespace updp2p::runtime {

struct LoopbackClusterConfig {
  std::size_t population = 8;
  /// Per-peer runtime template; `seed` also keys the network when
  /// `network.seed` is left at its default.
  RuntimeConfig runtime;
  net::InprocNetworkConfig network;
  /// Peers each seed their view with the full membership when 0, otherwise
  /// with this many deterministic samples.
  std::size_t initial_view_size = 0;
};

class LoopbackCluster {
 public:
  explicit LoopbackCluster(LoopbackClusterConfig config);

  [[nodiscard]] std::size_t population() const noexcept {
    return peers_.size();
  }
  [[nodiscard]] PeerRuntime& peer(common::PeerId id) {
    return *peers_.at(id.value()).runtime;
  }
  [[nodiscard]] const PeerRuntime& peer(common::PeerId id) const {
    return *peers_.at(id.value()).runtime;
  }
  [[nodiscard]] net::InprocNetwork& network() noexcept { return network_; }
  [[nodiscard]] common::SimTime now() const noexcept { return now_; }

  /// Publishes from `from` (must be online) and returns the version id.
  std::optional<version::VersionId> publish(common::PeerId from,
                                            std::string_view key,
                                            std::string payload);

  /// External churn control.
  void set_online(common::PeerId id, bool online);

  /// Steps virtual time to `until` in `dt` increments: each step delivers
  /// due datagrams, then polls every runtime in peer order.
  void run_until(common::SimTime until, common::SimTime dt = 0.05);

  /// Steps until every *online* peer knows `id` or `deadline` passes.
  /// Returns true on convergence.
  bool run_until_aware(const version::VersionId& id, common::SimTime deadline,
                       common::SimTime dt = 0.05);

  /// Peers (online or not) whose node has stored version `id`.
  [[nodiscard]] std::size_t aware_count(const version::VersionId& id) const;
  [[nodiscard]] bool all_online_aware(const version::VersionId& id) const;

  /// Sum of a few load-bearing counters over all peers — a compact
  /// fingerprint for golden tests.
  struct ClusterTotals {
    std::uint64_t datagrams_out = 0;
    std::uint64_t retransmits = 0;
    std::uint64_t retries_cancelled = 0;
    std::uint64_t retries_exhausted = 0;
    std::uint64_t decode_errors = 0;
    std::uint64_t frames_reused = 0;
    std::uint64_t retransmit_reencodes = 0;
  };
  [[nodiscard]] ClusterTotals totals() const;

 private:
  struct Peer {
    std::unique_ptr<net::InprocTransport> transport;
    std::unique_ptr<PeerRuntime> runtime;
  };

  void step(common::SimTime to);

  LoopbackClusterConfig config_;
  net::InprocNetwork network_;
  std::vector<Peer> peers_;
  common::SimTime now_ = 0.0;
};

}  // namespace updp2p::runtime
