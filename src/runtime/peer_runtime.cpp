#include "runtime/peer_runtime.hpp"

#include <variant>

#include "common/ensure.hpp"
#include "gossip/codec.hpp"

namespace updp2p::runtime {

namespace {
/// Purpose key of the retry-jitter stream — distinct from the node's
/// protocol stream (purpose 0) under the same (seed, peer id).
constexpr std::uint64_t kJitterPurpose = 0xBACC;

[[nodiscard]] std::size_t hash_mix(std::size_t a, std::size_t b) noexcept {
  return a ^ (b + 0x9e3779b97f4a7c15ULL + (a << 6) + (a >> 2));
}
}  // namespace

std::size_t PeerRuntime::PushKeyHash::operator()(
    const PushKey& key) const noexcept {
  return hash_mix(std::hash<common::PeerId>{}(key.to),
                  std::hash<version::VersionId>{}(key.version));
}

std::size_t PeerRuntime::QueryKeyHash::operator()(
    const QueryKey& key) const noexcept {
  return hash_mix(std::hash<common::PeerId>{}(key.to),
                  std::hash<std::uint64_t>{}(key.nonce));
}

PeerRuntime::PeerRuntime(RuntimeConfig config, net::Transport& transport)
    : config_(std::move(config)),
      transport_(transport),
      node_(transport.self(), config_.gossip,
            common::StreamRng(config_.seed, transport.self().value())),
      wheel_(config_.tick_duration),
      jitter_rng_(config_.seed, transport.self().value(), kJitterPurpose),
      online_(config_.start_online) {
  config_.gossip.validate();
  config_.retry.validate();
  UPDP2P_ENSURE(config_.round_duration > 0.0,
                "round duration must be positive");
  UPDP2P_ENSURE(config_.start_time >= 0.0, "start time must be non-negative");
  // A restarted peer rejoins at the cluster's current time: position the
  // clock, the wheel and the round counter there before any timer is
  // armed, so the first round tick fires for the *next* round rather than
  // replaying rounds 1..now in one poll.
  now_ = config_.start_time;
  last_ticked_round_ = round_of(now_);
  wheel_.advance(now_);
  // Recovery runs to completion before the transport can deliver a single
  // live datagram: the node first stands exactly where it died, then
  // rejoins the protocol.
  recover_from_store();
  arm_snapshot_timer();
  transport_.set_listening(online_);
  if (online_) arm_round_timer();
}

void PeerRuntime::recover_from_store() {
  if (!config_.store.enabled()) return;
  auto opened = store::ReplicaStore::open(config_.store, &store_error_);
  if (!opened) return;  // runs volatile; the owner can inspect store_error()
  store_ = std::move(*opened);
  store::SnapshotData snapshot = store_->take_snapshot_state();
  stats_.snapshot_values_recovered = snapshot.values.size();
  node_.import_durable_state(snapshot.membership, std::move(snapshot.values));
  // Replay the log tail through the SAME entry point live datagrams use,
  // with the recorded delivery context. Whatever the node emits (acks,
  // forwards) is discarded — those messages were already sent, or their
  // targets have long stopped waiting.
  std::vector<gossip::OutboundMessage> discard;
  store_->replay([&](const store::ReplicaStore::RecoveredFrame& record) {
    discard.clear();
    if (node_.handle_frame(record.from, record.frame, record.round,
                           discard)) {
      ++stats_.wal_replayed;
    } else {
      ++stats_.wal_replay_rejected;
    }
  });
}

void PeerRuntime::bootstrap(std::span<const common::PeerId> initial_view) {
  node_.bootstrap(initial_view);
}

std::optional<version::VersionId> PeerRuntime::publish(std::string_view key,
                                                       std::string payload) {
  if (!online_) return std::nullopt;
  out_scratch_ = node_.publish(key, std::move(payload), current_round());
  // Durable before the first push leaves: no peer will ever push our own
  // update back to us, so a crash between publish and the first ack would
  // otherwise lose it forever.
  append_local_versions(key);
  transmit(out_scratch_);
  const auto value = node_.read(key);
  if (!value) return std::nullopt;
  return value->id;
}

bool PeerRuntime::remove(std::string_view key) {
  if (!online_) return false;
  out_scratch_ = node_.remove(key, current_round());
  append_local_versions(key);
  transmit(out_scratch_);
  return true;
}

std::uint64_t PeerRuntime::begin_query(std::string_view key,
                                       gossip::QueryRule rule,
                                       std::size_t replicas_to_ask) {
  if (!online_) return 0;
  gossip::StartedQuery started =
      node_.begin_query(key, rule, replicas_to_ask, current_round());
  transmit(started.messages);
  return started.nonce;
}

gossip::QueryOutcome PeerRuntime::poll_query(std::uint64_t nonce) {
  return node_.poll_query(nonce, current_round());
}

void PeerRuntime::go_online() {
  if (online_) return;
  online_ = true;
  transport_.set_listening(true);
  // Rounds spent offline are not replayed — the pull phase, not the round
  // clock, is the recovery mechanism (§3).
  last_ticked_round_ = current_round();
  out_scratch_.clear();
  node_.on_reconnect(current_round(), out_scratch_);
  transmit(out_scratch_);
  arm_round_timer();
}

void PeerRuntime::go_offline() {
  if (!online_) return;
  online_ = false;
  node_.on_disconnect(current_round());
  // §3: in-flight expectations do not survive a disconnect.
  drop_all_retries();
  if (round_timer_ != TimerWheel::kInvalidTimer) {
    wheel_.cancel(round_timer_);
    round_timer_ = TimerWheel::kInvalidTimer;
  }
  transport_.set_listening(false);
}

void PeerRuntime::poll(common::SimTime now) {
  UPDP2P_ENSURE(now >= now_, "poll time must be monotone");
  now_ = now;

  inbox_scratch_.clear();
  transport_.drain(inbox_scratch_);
  for (net::InboundDatagram& datagram : inbox_scratch_) {
    ++stats_.datagrams_in;
    if (online_) {
      deliver_datagram(datagram);
    } else {
      ++stats_.dropped_while_offline;
    }
    // The datagram's bytes are fully consumed within the delivery; hand
    // the buffer back so the transport's next drain can refill it.
    transport_.recycle(std::move(datagram.bytes));
  }

  wheel_.advance(now);
}

void PeerRuntime::deliver_datagram(net::InboundDatagram& datagram) {
  // A cheap header probe routes the datagram. Pushes — the bulk of live
  // traffic, and never a confirming signal — take the zero-copy frame
  // path: the node classifies duplicates from the probe alone and
  // stream-decodes first receipts. Everything else (acks, pull/query
  // traffic) is small; it decodes fully, cancels any retry it confirms,
  // and dispatches as before.
  const auto probe = gossip::probe_frame(datagram.bytes);
  if (!probe) {
    ++stats_.decode_errors;
    return;
  }
  out_scratch_.clear();
  if (probe->kind == gossip::WireKind::kPush) {
    // Probe-based duplicate classification gates the WAL append exactly as
    // it gates the full decode: ~80% of push deliveries are duplicates the
    // node already holds durably, and logging them would bloat the log
    // with bytes replay would classify as duplicates anyway.
    const bool first_receipt = !node_.knows_version(probe->version);
    if (!node_.handle_frame(datagram.from, datagram.bytes, current_round(),
                            out_scratch_)) {
      ++stats_.decode_errors;
      return;
    }
    if (first_receipt) {
      // Append-before-ack: the §6 ack sits in out_scratch_ and only goes
      // out (transmit below) once the frame is durably in the log — an
      // acked update can never be lost to a crash.
      append_durable(datagram.from, current_round(), datagram.bytes);
    } else if (store_) {
      ++stats_.wal_duplicates_skipped;
    }
  } else {
    const auto payload = gossip::decode(datagram.bytes);
    if (!payload) {
      ++stats_.decode_errors;
      return;
    }
    // Cancel first: this datagram may be the confirming signal a retry
    // timer is waiting for.
    note_confirmation(datagram.from, *payload);
    if (const auto* pull = std::get_if<gossip::PullResponse>(&*payload)) {
      stats_.pull_response_bytes_in += datagram.bytes.size();
      // A pull response carrying values is new state exactly like a first
      // push; one that carries none changes nothing worth logging.
      if (!pull->missing.empty()) {
        append_durable(datagram.from, current_round(), datagram.bytes);
      }
    }
    node_.handle_message(datagram.from, *payload, current_round(),
                         out_scratch_);
  }
  transmit(out_scratch_);
}

void PeerRuntime::append_durable(common::PeerId from, common::Round round,
                                 std::span<const std::byte> frame) {
  if (!store_) return;
  if (store_->append_frame(from, round, frame)) {
    ++stats_.wal_appends;
    (void)maybe_snapshot(false);
  } else {
    // Degrade to volatile, loudly countable — a full disk must not stop
    // the protocol (the paper's peers are unreliable in every other way
    // already).
    ++stats_.wal_append_failures;
  }
}

void PeerRuntime::append_local_versions(std::string_view key) {
  if (!store_) return;
  gossip::WireBytes frame;
  for (version::VersionedValue& value : node_.store().versions(key)) {
    // The synthesised frame is a push from ourselves with an empty
    // flooding list: replay feeds it to handle_frame(self, ...), where the
    // value applies and the emitted fan-out is discarded like any other
    // replay output.
    gossip::GossipPayload payload = gossip::PushMessage{
        gossip::SharedValue(std::move(value)), gossip::SharedPeerList{},
        current_round()};
    gossip::encode_into(payload, frame);
    append_durable(node_.id(), current_round(), frame);
  }
}

bool PeerRuntime::maybe_snapshot(bool timer_fired) {
  if (!store_) return false;
  const bool due = timer_fired ? store_->stats().records_since_snapshot > 0
                               : store_->snapshot_due();
  if (!due) return false;
  std::string error;
  if (store_->write_snapshot(node_.view().membership(),
                             node_.store().all_versions(), &error)) {
    ++stats_.snapshots_written;
    return true;
  }
  ++stats_.snapshot_failures;
  return false;
}

bool PeerRuntime::snapshot_now() {
  if (!store_) return true;
  if (store_->stats().records_since_snapshot == 0) return true;
  return maybe_snapshot(true);
}

void PeerRuntime::arm_snapshot_timer() {
  if (!store_ || config_.store.snapshot_interval <= 0.0) return;
  snapshot_timer_ = wheel_.schedule_after(
      config_.store.snapshot_interval, [this](common::SimTime /*at*/) {
        snapshot_timer_ = TimerWheel::kInvalidTimer;
        (void)maybe_snapshot(/*timer_fired=*/true);
        arm_snapshot_timer();
      });
}

net::DatagramBytes PeerRuntime::take_buffer() {
  if (frame_pool_.empty()) return {};
  net::DatagramBytes bytes = std::move(frame_pool_.back());
  frame_pool_.pop_back();
  ++stats_.frames_reused;
  return bytes;
}

void PeerRuntime::recycle_buffer(net::DatagramBytes&& bytes) {
  if (bytes.capacity() == 0) return;
  frame_pool_.push_back(std::move(bytes));
}

void PeerRuntime::transmit(std::vector<gossip::OutboundMessage>& messages) {
  for (gossip::OutboundMessage& message : messages) {
    net::DatagramBytes bytes = take_buffer();
    gossip::encode_into(message.payload, bytes);
    ++stats_.datagrams_out;
    transport_.send(message.to, bytes);
    if (config_.retry.max_attempts <= 1) {
      recycle_buffer(std::move(bytes));
      continue;
    }

    if (const auto* push = std::get_if<gossip::PushMessage>(&message.payload)) {
      // A push is only retried when acks are on — without §6 acks no
      // protocol message confirms receipt, and blind retransmission would
      // just multiply duplicates.
      if (config_.gossip.acks.enabled) {
        PendingSend pending;
        pending.expect = Expect::kAck;
        pending.to = message.to;
        pending.version = push->value->id;
        pending.bytes = std::move(bytes);
        arm_retry(std::move(pending));
        continue;
      }
    } else if (std::holds_alternative<gossip::PullRequest>(message.payload)) {
      PendingSend pending;
      pending.expect = Expect::kPullResponse;
      pending.to = message.to;
      pending.bytes = std::move(bytes);
      arm_retry(std::move(pending));
      continue;
    } else if (const auto* query =
                   std::get_if<gossip::QueryRequest>(&message.payload)) {
      PendingSend pending;
      pending.expect = Expect::kQueryReply;
      pending.to = message.to;
      pending.nonce = query->nonce;
      pending.bytes = std::move(bytes);
      arm_retry(std::move(pending));
      continue;
    }
    recycle_buffer(std::move(bytes));
  }
  messages.clear();
}

void PeerRuntime::arm_retry(PendingSend pending) {
  // A fresh send to the same key supersedes any stale in-flight entry
  // (e.g. the node re-pushed the same version to the same target).
  switch (pending.expect) {
    case Expect::kAck: {
      const auto it = push_index_.find(PushKey{pending.to, pending.version});
      if (it != push_index_.end()) cancel_pending(it->second);
      break;
    }
    case Expect::kPullResponse: {
      const auto it = pull_index_.find(pending.to);
      if (it != pull_index_.end()) cancel_pending(it->second);
      break;
    }
    case Expect::kQueryReply: {
      const auto it = query_index_.find(QueryKey{pending.to, pending.nonce});
      if (it != query_index_.end()) cancel_pending(it->second);
      break;
    }
  }

  const std::uint64_t token = next_token_++;
  switch (pending.expect) {
    case Expect::kAck:
      push_index_.emplace(PushKey{pending.to, pending.version}, token);
      break;
    case Expect::kPullResponse:
      pull_index_.emplace(pending.to, token);
      break;
    case Expect::kQueryReply:
      query_index_.emplace(QueryKey{pending.to, pending.nonce}, token);
      break;
  }
  pending_.emplace(token, std::move(pending));
  ++stats_.retries_armed;
  schedule_retry_timer(token);
}

void PeerRuntime::schedule_retry_timer(std::uint64_t token) {
  PendingSend& pending = pending_.at(token);
  const common::SimTime wait =
      config_.retry.delay(pending.attempt, jitter_rng_);
  pending.timer = wheel_.schedule_after(
      wait, [this, token](common::SimTime /*at*/) { on_retry_timer(token); });
}

void PeerRuntime::on_retry_timer(std::uint64_t token) {
  const auto it = pending_.find(token);
  if (it == pending_.end()) return;  // raced with a cancel; nothing to do
  PendingSend& pending = it->second;
  const unsigned transmissions = 1 + pending.attempt;
  if (transmissions >= config_.retry.max_attempts) {
    ++stats_.retries_exhausted;
    pending.timer = TimerWheel::kInvalidTimer;
    cancel_pending(token);
    return;
  }
  ++pending.attempt;
  ++stats_.retransmits;
  ++stats_.datagrams_out;
  // Retransmission is the encoded bytes the original send produced — the
  // tripwire below (asserted 0 by the loopback golden test) would count
  // any path that lost them and had to re-encode.
  if (pending.bytes.empty()) ++stats_.retransmit_reencodes;
  transport_.send(pending.to, pending.bytes);
  schedule_retry_timer(token);
}

void PeerRuntime::cancel_pending(std::uint64_t token) {
  const auto it = pending_.find(token);
  if (it == pending_.end()) return;
  PendingSend& pending = it->second;
  switch (pending.expect) {
    case Expect::kAck:
      push_index_.erase(PushKey{pending.to, pending.version});
      break;
    case Expect::kPullResponse:
      pull_index_.erase(pending.to);
      break;
    case Expect::kQueryReply:
      query_index_.erase(QueryKey{pending.to, pending.nonce});
      break;
  }
  if (pending.timer != TimerWheel::kInvalidTimer) {
    wheel_.cancel(pending.timer);
  }
  recycle_buffer(std::move(pending.bytes));
  pending_.erase(it);
}

void PeerRuntime::note_confirmation(common::PeerId from,
                                    const gossip::GossipPayload& payload) {
  std::uint64_t token = 0;
  if (const auto* ack = std::get_if<gossip::AckMessage>(&payload)) {
    const auto it = push_index_.find(PushKey{from, ack->acked});
    if (it == push_index_.end()) return;
    token = it->second;
  } else if (std::holds_alternative<gossip::PullResponse>(payload)) {
    const auto it = pull_index_.find(from);
    if (it == pull_index_.end()) return;
    token = it->second;
  } else if (const auto* reply = std::get_if<gossip::QueryReply>(&payload)) {
    const auto it = query_index_.find(QueryKey{from, reply->nonce});
    if (it == query_index_.end()) return;
    token = it->second;
  } else {
    return;
  }
  ++stats_.retries_cancelled;
  cancel_pending(token);
}

void PeerRuntime::arm_round_timer() {
  const common::SimTime deadline =
      static_cast<common::SimTime>(last_ticked_round_ + 1) *
      config_.round_duration;
  round_timer_ = wheel_.schedule_at(
      deadline, [this](common::SimTime at) { on_round_timer(at); });
}

void PeerRuntime::on_round_timer(common::SimTime at) {
  round_timer_ = TimerWheel::kInvalidTimer;
  if (!online_) return;
  const common::Round target = round_of(at);
  while (last_ticked_round_ < target) {
    ++last_ticked_round_;
    ++stats_.rounds_ticked;
    out_scratch_.clear();
    node_.on_round_start(last_ticked_round_, out_scratch_);
    transmit(out_scratch_);
  }
  arm_round_timer();
}

void PeerRuntime::drop_all_retries() {
  for (auto& [token, pending] : pending_) {
    if (pending.timer != TimerWheel::kInvalidTimer) {
      wheel_.cancel(pending.timer);
    }
    recycle_buffer(std::move(pending.bytes));
  }
  pending_.clear();
  push_index_.clear();
  pull_index_.clear();
  query_index_.clear();
}

}  // namespace updp2p::runtime
