// PeerRuntime — one deployed peer: a gossip node behind a live transport.
//
// The simulators drive ReplicaNode by delivering in-memory payloads round
// by round; PeerRuntime drives the *same node type* from a byte-oriented
// datagram transport and a continuous clock:
//
//   * outbound protocol messages are encoded with gossip::codec and handed
//     to the Transport as datagrams;
//   * inbound datagrams are probed (gossip::probe_frame) and routed:
//     pushes go down the zero-copy frame path (duplicates classified from
//     the header, first receipts stream-decoded), other kinds decode fully;
//     garbage is counted and dropped — the codec is fail-safe;
//   * a monotonic timer wheel supplies the push-round cadence
//     (on_round_start) and per-message retry timers;
//   * datagrams whose arrival the protocol can confirm — pushes (via §6
//     acks), pull requests (via pull responses), query requests (via query
//     replies) — are retransmitted with capped exponential backoff + jitter
//     until the confirming message cancels the retry (runtime/retry.hpp);
//   * online/offline session control is external (go_online/go_offline),
//     so churn can be driven by an orchestrator, a test harness, or a real
//     process lifecycle.
//
// Time is explicit: the owner calls poll(now) from its event loop (virtual
// time over InprocTransport, a monotonic wall clock over UdpTransport).
// PeerRuntime never reads a clock itself — that is what makes the
// InprocTransport-backed cluster bit-deterministic.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "gossip/node.hpp"
#include "net/transport.hpp"
#include "runtime/retry.hpp"
#include "runtime/timer_wheel.hpp"
#include "store/replica_store.hpp"

namespace updp2p::runtime {

struct RuntimeConfig {
  gossip::GossipConfig gossip;
  RetryPolicy retry;
  /// Wall/virtual seconds per push round (the cadence of on_round_start).
  common::SimTime round_duration = 1.0;
  /// Timer wheel granularity; retry deadlines quantise to this.
  common::SimTime tick_duration = 0.05;
  /// Root seed; the node's stream is keyed (seed, peer id) exactly like
  /// the simulators key theirs, the retry jitter stream by a distinct
  /// purpose.
  std::uint64_t seed = 0x5eed;
  bool start_online = true;
  /// Epoch of this runtime's clock. A freshly booted peer starts at 0; a
  /// peer *restarted into a running cluster* (crash/recovery harnesses)
  /// passes the current cluster time so its round counter resumes at the
  /// current round — without this, the first round timer would replay
  /// every round since 0 in one poll. The first poll(now) must satisfy
  /// now >= start_time.
  common::SimTime start_time = 0.0;
  /// Durable replica store (WAL + snapshots). Disabled while
  /// store.data_dir is empty — the runtime then runs fully volatile,
  /// exactly as before the store existed.
  store::StoreConfig store;
};

struct RuntimeStats {
  std::uint64_t datagrams_out = 0;      ///< send attempts (incl. retransmits)
  std::uint64_t datagrams_in = 0;       ///< drained from the transport
  std::uint64_t decode_errors = 0;      ///< inbound bytes the codec rejected
  std::uint64_t retransmits = 0;
  std::uint64_t retries_armed = 0;
  std::uint64_t retries_cancelled = 0;  ///< confirming message arrived
  std::uint64_t retries_exhausted = 0;  ///< attempt budget ran out
  std::uint64_t rounds_ticked = 0;
  std::uint64_t dropped_while_offline = 0;
  /// Outbound frames encoded into a recycled buffer (pool hit) instead of
  /// a fresh allocation — >0 in any steady-state run.
  std::uint64_t frames_reused = 0;
  /// Retransmissions that had to re-encode their payload. MUST stay 0: a
  /// retransmit resends the exact bytes its PendingSend owns; this counter
  /// is a tripwire asserted by the loopback golden test.
  std::uint64_t retransmit_reencodes = 0;
  // --- durable store (all zero while the store is disabled) ---------------
  std::uint64_t wal_appends = 0;          ///< frames made durable
  std::uint64_t wal_append_failures = 0;  ///< I/O failures (ran volatile)
  std::uint64_t wal_duplicates_skipped = 0;  ///< pushes already durable
  std::uint64_t wal_replayed = 0;         ///< frames replayed at recovery
  std::uint64_t wal_replay_rejected = 0;  ///< replayed frames that failed decode
  std::uint64_t snapshot_values_recovered = 0;
  std::uint64_t snapshots_written = 0;
  std::uint64_t snapshot_failures = 0;
  /// PullResponse datagram bytes received while online — the §3 reconnect
  /// cost a durable store exists to shrink (live_recovery_test compares
  /// this exactly against pull-from-zero).
  std::uint64_t pull_response_bytes_in = 0;
};

class PeerRuntime {
 public:
  /// The transport must outlive the runtime; its self() becomes the node
  /// id. Not thread-safe — runtime, transport and wheel share one loop.
  PeerRuntime(RuntimeConfig config, net::Transport& transport);

  /// Seeds the initial membership view (§2).
  void bootstrap(std::span<const common::PeerId> initial_view);

  // --- application-facing API (all use the last polled time) ---------------

  /// Publishes locally and starts the push phase. Returns the new version
  /// id, or nullopt while offline (an offline peer cannot push).
  std::optional<version::VersionId> publish(std::string_view key,
                                            std::string payload);
  /// Tombstone-deletes and propagates the death certificate.
  bool remove(std::string_view key);
  [[nodiscard]] std::optional<version::VersionedValue> read(
      std::string_view key) const {
    return node_.read(key);
  }
  /// Message-based §4.4 query; returns the nonce to poll with (0 while
  /// offline).
  std::uint64_t begin_query(std::string_view key, gossip::QueryRule rule,
                            std::size_t replicas_to_ask);
  [[nodiscard]] gossip::QueryOutcome poll_query(std::uint64_t nonce);

  // --- session control ------------------------------------------------------

  /// Enters the online state: the transport starts listening, the node runs
  /// its §3 reconnect pull (or arms the §6 lazy pull), round ticks resume.
  void go_online();
  /// Leaves the network: in-flight retries are abandoned (§3 — expectations
  /// do not survive a disconnect), the transport stops listening.
  void go_offline();
  [[nodiscard]] bool online() const noexcept { return online_; }

  // --- event loop -----------------------------------------------------------

  /// Advances the runtime to `now` (monotone): drains the transport,
  /// delivers decoded messages to the node, fires due timers (round ticks,
  /// retransmits) and transmits everything the node emitted.
  void poll(common::SimTime now);

  /// Earliest pending timer deadline — how long an event loop may sleep
  /// when the socket stays quiet. nullopt when no timer is armed.
  [[nodiscard]] std::optional<common::SimTime> next_deadline() const {
    return wheel_.next_deadline();
  }

  // --- introspection --------------------------------------------------------

  [[nodiscard]] common::PeerId id() const noexcept { return node_.id(); }
  [[nodiscard]] gossip::ReplicaNode& node() noexcept { return node_; }
  [[nodiscard]] const gossip::ReplicaNode& node() const noexcept {
    return node_;
  }
  [[nodiscard]] const RuntimeStats& stats() const noexcept { return stats_; }
  /// True when the durable store opened (recovery ran in the constructor).
  [[nodiscard]] bool durable() const noexcept { return store_.has_value(); }
  /// Why the store failed to open (empty when durable() or disabled).
  [[nodiscard]] const std::string& store_error() const noexcept {
    return store_error_;
  }
  [[nodiscard]] const store::ReplicaStore* replica_store() const noexcept {
    return store_ ? &*store_ : nullptr;
  }
  /// Forces a snapshot now (orderly shutdown); true when written or when
  /// nothing needed writing.
  bool snapshot_now();
  [[nodiscard]] common::SimTime now() const noexcept { return now_; }
  [[nodiscard]] common::Round current_round() const noexcept {
    return round_of(now_);
  }
  /// In-flight sends still awaiting their confirming message.
  [[nodiscard]] std::size_t pending_retries() const noexcept {
    return pending_.size();
  }

 private:
  /// What confirms an in-flight datagram (and keys its cancellation).
  enum class Expect : std::uint8_t { kAck, kPullResponse, kQueryReply };

  struct PendingSend {
    Expect expect = Expect::kAck;
    common::PeerId to;
    version::VersionId version;  ///< kAck: the pushed version
    std::uint64_t nonce = 0;     ///< kQueryReply: the query nonce
    net::DatagramBytes bytes;    ///< exact datagram for retransmission
    unsigned attempt = 0;        ///< retransmissions performed so far
    TimerWheel::TimerId timer = TimerWheel::kInvalidTimer;
  };

  struct PushKey {
    common::PeerId to;
    version::VersionId version;
    friend bool operator==(const PushKey&, const PushKey&) = default;
  };
  struct PushKeyHash {
    std::size_t operator()(const PushKey& key) const noexcept;
  };
  struct QueryKey {
    common::PeerId to;
    std::uint64_t nonce = 0;
    friend bool operator==(const QueryKey&, const QueryKey&) = default;
  };
  struct QueryKeyHash {
    std::size_t operator()(const QueryKey& key) const noexcept;
  };

  [[nodiscard]] common::Round round_of(common::SimTime at) const noexcept {
    return static_cast<common::Round>(at / config_.round_duration);
  }

  /// Encodes, transmits and (where a confirming signal exists) arms a
  /// retry for every message the node emitted. Consumes `messages`.
  /// Encoding fills a pooled buffer (take_buffer / recycle_buffer): frames
  /// that arm a retry keep their buffer in the PendingSend for exact-bytes
  /// retransmission; all others return it to the pool immediately.
  void transmit(std::vector<gossip::OutboundMessage>& messages);
  [[nodiscard]] net::DatagramBytes take_buffer();
  void recycle_buffer(net::DatagramBytes&& bytes);
  /// Routes one drained datagram: probe → frame path for pushes, full
  /// decode (+ retry cancellation) for everything else.
  void deliver_datagram(net::InboundDatagram& datagram);
  void arm_retry(PendingSend pending);
  void schedule_retry_timer(std::uint64_t token);
  void on_retry_timer(std::uint64_t token);
  void cancel_pending(std::uint64_t token);
  /// Ack / pull response / query reply arrived: cancel the matching retry.
  void note_confirmation(common::PeerId from,
                         const gossip::GossipPayload& payload);
  void arm_round_timer();
  void on_round_timer(common::SimTime at);
  void drop_all_retries();
  /// Opens the store and replays snapshot + log into the node (ctor only).
  void recover_from_store();
  /// Appends one received/synthesised frame; degrades to volatile on I/O
  /// failure (counted, never fatal — the protocol must keep running).
  void append_durable(common::PeerId from, common::Round round,
                      std::span<const std::byte> frame);
  /// Synthesises push frames for the key's maximal versions so LOCAL
  /// publishes/removes are as durable as received ones (no peer will ever
  /// push our own update back to us before a crash).
  void append_local_versions(std::string_view key);
  /// Count trigger after appends; timer trigger forces (if log non-empty).
  bool maybe_snapshot(bool timer_fired);
  void arm_snapshot_timer();

  RuntimeConfig config_;
  net::Transport& transport_;
  gossip::ReplicaNode node_;
  TimerWheel wheel_;
  common::StreamRng jitter_rng_;
  bool online_ = true;
  common::SimTime now_ = 0.0;
  common::Round last_ticked_round_ = 0;
  TimerWheel::TimerId round_timer_ = TimerWheel::kInvalidTimer;
  std::optional<store::ReplicaStore> store_;
  std::string store_error_;
  TimerWheel::TimerId snapshot_timer_ = TimerWheel::kInvalidTimer;

  std::unordered_map<std::uint64_t, PendingSend> pending_;  ///< by token
  std::unordered_map<PushKey, std::uint64_t, PushKeyHash> push_index_;
  std::unordered_map<common::PeerId, std::uint64_t> pull_index_;
  std::unordered_map<QueryKey, std::uint64_t, QueryKeyHash> query_index_;
  std::uint64_t next_token_ = 1;

  std::vector<net::InboundDatagram> inbox_scratch_;
  std::vector<gossip::OutboundMessage> out_scratch_;
  /// Free list of outbound frame buffers; capacity-warm after the first
  /// few sends, so steady-state encodes allocate nothing.
  std::vector<net::DatagramBytes> frame_pool_;
  RuntimeStats stats_;
};

}  // namespace updp2p::runtime
