// Retry/timeout policy with exponential backoff and jitter.
//
// The live transports are honest about the paper's network model: a push or
// pull request datagram can vanish, and the only signals that it arrived
// are protocol-level — an ack (§6) for a push, a pull response for a pull
// request, a query reply for a query request. PeerRuntime retransmits the
// exact datagram bytes until such a signal cancels the retry or the attempt
// budget runs out. The schedule is classic capped exponential backoff with
// symmetric multiplicative jitter so a burst of peers that timed out
// together does not retransmit in lockstep.
#pragma once

#include <algorithm>
#include <cstdint>

#include "common/ensure.hpp"
#include "common/rng.hpp"
#include "common/types.hpp"

namespace updp2p::runtime {

struct RetryPolicy {
  /// Wait before the first retransmission (attempt 0).
  common::SimTime initial_timeout = 0.5;
  /// Multiplier applied per further attempt.
  double multiplier = 2.0;
  /// Ceiling on any single wait (before jitter).
  common::SimTime max_timeout = 8.0;
  /// Symmetric jitter fraction: the sampled wait is uniform in
  /// [base·(1-jitter), base·(1+jitter)].
  double jitter = 0.2;
  /// Total transmissions of one datagram, including the original send.
  /// 1 disables retransmission entirely; 0 disables retry tracking.
  unsigned max_attempts = 5;

  /// Deterministic backoff base for retransmission number `attempt`
  /// (0-based): min(initial_timeout · multiplier^attempt, max_timeout).
  [[nodiscard]] common::SimTime base_delay(unsigned attempt) const noexcept {
    common::SimTime delay = initial_timeout;
    for (unsigned i = 0; i < attempt; ++i) {
      delay *= multiplier;
      if (delay >= max_timeout) return max_timeout;
    }
    return std::min(delay, max_timeout);
  }

  /// Jittered wait before retransmission `attempt`. Works with either RNG
  /// engine through the shared distribution mixin.
  template <typename Engine>
  [[nodiscard]] common::SimTime delay(unsigned attempt,
                                      common::RngOps<Engine>& rng) const {
    const common::SimTime base = base_delay(attempt);
    if (jitter <= 0.0) return base;
    return base * (1.0 + jitter * (2.0 * rng.uniform01() - 1.0));
  }

  void validate() const {
    UPDP2P_ENSURE(initial_timeout > 0.0, "initial timeout must be positive");
    UPDP2P_ENSURE(multiplier >= 1.0, "backoff multiplier must be >= 1");
    UPDP2P_ENSURE(max_timeout >= initial_timeout,
                  "max timeout must be >= initial timeout");
    UPDP2P_ENSURE(jitter >= 0.0 && jitter < 1.0, "jitter must be in [0,1)");
  }
};

}  // namespace updp2p::runtime
