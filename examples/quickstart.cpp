// Quickstart: propagate one update through a replica group of mostly
// offline peers with the hybrid push/pull protocol, and read it back.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <iostream>

#include "analysis/forward_probability.hpp"
#include "common/table.hpp"
#include "net/inproc_transport.hpp"
#include "runtime/peer_runtime.hpp"
#include "sim/round_simulator.hpp"

using namespace updp2p;

int main() {
  // 1. Configure the gossip protocol: a replica group provisioned for 500
  //    replicas, fanout fraction f_r = 4% (each push contacts ~20 peers),
  //    decaying forward probability PF(t) = 0.9^t, and partial flooding
  //    lists for duplicate suppression.
  gossip::GossipConfig gossip_config;
  gossip_config.estimated_total_replicas = 500;
  gossip_config.fanout_fraction = 0.04;
  gossip_config.forward_probability = analysis::pf_geometric(0.9);
  gossip_config.partial_list.mode = gossip::PartialListMode::kUnbounded;

  // 2. Host the replica group in the round-based simulator: 500 peers,
  //    20% online at any time, online peers staying per round w.p. 0.98.
  sim::RoundSimConfig sim_config;
  sim_config.population = 500;
  sim_config.gossip = gossip_config;
  sim_config.seed = 2026;
  auto churn = std::make_unique<churn::BernoulliChurn>(
      sim_config.population, /*initial_online_fraction=*/0.20,
      /*sigma=*/0.98, /*p_join=*/0.002);
  sim::RoundSimulator simulator(std::move(sim_config), std::move(churn));

  // 3. Publish an update from a random online peer. The push phase floods
  //    it to the online population; peers coming online later pull it.
  const auto metrics = simulator.propagate_update(
      std::nullopt, "greeting", "hello, unreliable world");

  std::cout << "population:                " << metrics.population << "\n"
            << "online at publish time:    " << metrics.initial_online << "\n"
            << "push messages sent:        " << metrics.total_push_messages()
            << " (" << common::format_double(
                           metrics.messages_per_initial_online(), 2)
            << " per initially-online peer)\n"
            << "pull messages sent:        " << metrics.total_pull_messages()
            << "\n"
            << "online peers aware:        "
            << common::format_double(100.0 * metrics.final_aware_fraction(), 1)
            << "%\n"
            << "push rounds used:          " << metrics.rounds_to_quiescence()
            << "\n";

  // 4. Read the value back from an arbitrary peer that is online now.
  for (std::uint32_t i = 0; i < simulator.population(); ++i) {
    const common::PeerId peer(i);
    if (!simulator.churn().is_online(peer)) continue;
    if (const auto value = simulator.node(peer).read("greeting")) {
      std::cout << "peer " << i << " reads: \"" << value->payload << "\" "
                << "(version " << value->id.to_string().substr(0, 8)
                << "..., history " << value->history.to_string() << ")\n";
      break;
    }
  }

  // 5. Live mode: the same ReplicaNode type behind a real event loop.
  //    Two PeerRuntimes (codec, timer wheel, retry/backoff) exchange
  //    datagrams through the deterministic in-process transport; swap
  //    InprocNetwork::attach for net::UdpTransport::open and the identical
  //    code runs over sockets (see examples/peerd.cpp).
  net::InprocNetworkConfig net_config;
  net_config.seed = 13;  // this seed drops the first push: one retransmit,
                         // then the ack lands and cancels the retry
  net_config.loss_probability = 0.2;
  net::InprocNetwork network(net_config);
  auto transport_a = network.attach(common::PeerId(0));
  auto transport_b = network.attach(common::PeerId(1));

  runtime::RuntimeConfig runtime_config;
  runtime_config.gossip.estimated_total_replicas = 2;
  runtime_config.gossip.fanout_fraction = 1.0;
  runtime_config.gossip.acks.enabled = true;  // acks make pushes retryable
  runtime_config.retry.initial_timeout = 0.2;
  runtime_config.round_duration = 0.5;

  runtime::PeerRuntime alice(runtime_config, *transport_a);
  runtime::PeerRuntime bob(runtime_config, *transport_b);
  const common::PeerId knows_bob[] = {common::PeerId(1)};
  const common::PeerId knows_alice[] = {common::PeerId(0)};
  alice.bootstrap(knows_bob);
  bob.bootstrap(knows_alice);

  const auto live_id = alice.publish("greeting", "hello over the wire");
  common::SimTime settle_until = 30.0;  // keep polling briefly past
  for (common::SimTime now = 0.0;      // convergence so the ack lands
       now < settle_until; now += 0.05) {
    network.advance_to(now);  // deliver due datagrams (loss, latency)
    alice.poll(now);          // drain + fire retry/round timers
    bob.poll(now);
    if (bob.read("greeting") && settle_until > now + 1.0)
      settle_until = now + 1.0;
  }

  if (const auto value = bob.read("greeting"); value && live_id) {
    std::cout << "live: bob reads \"" << value->payload << "\" after "
              << alice.stats().retransmits << " retransmit(s), "
              << alice.stats().retries_cancelled << " retry cancelled by ack\n";
  }
  return 0;
}
