// Robustness under a catastrophic churn event.
//
// The paper's environment is "highly unreliable": peers vanish without
// warning. This example propagates an update while 70% of the online
// population disconnects mid-push (a deterministic TraceChurn schedule),
// then shows the pull phase healing the damage as peers return.
#include <iostream>

#include "analysis/forward_probability.hpp"
#include "common/table.hpp"
#include "churn/churn_model.hpp"
#include "sim/round_simulator.hpp"

using namespace updp2p;

int main() {
  constexpr std::size_t kPopulation = 400;

  // Build an explicit availability schedule:
  //   rounds 0-2 : 200 peers online (ids 0..199)
  //   rounds 3-9 : storm — only 60 remain (ids 0..59)
  //   rounds 10+ : recovery — 240 peers online (ids 0..239), i.e. peers
  //                60..239 (re)connect and must pull what they missed.
  std::vector<std::vector<common::PeerId>> schedule;
  auto range = [](std::uint32_t n) {
    std::vector<common::PeerId> peers;
    peers.reserve(n);
    for (std::uint32_t i = 0; i < n; ++i) peers.emplace_back(i);
    return peers;
  };
  for (int r = 0; r < 3; ++r) schedule.push_back(range(200));
  for (int r = 3; r < 10; ++r) schedule.push_back(range(60));
  schedule.push_back(range(240));

  sim::RoundSimConfig config;
  config.population = kPopulation;
  config.gossip.estimated_total_replicas = kPopulation;
  config.gossip.fanout_fraction = 0.05;
  config.gossip.forward_probability = analysis::pf_geometric(0.95);
  config.gossip.pull.contacts_per_attempt = 3;
  config.gossip.pull.no_update_timeout = 8;
  config.max_rounds = 30;
  config.quiescence_rounds = 40;  // run through the storm AND the recovery
  config.seed = 77;
  auto churn = std::make_unique<churn::TraceChurn>(kPopulation, schedule);
  sim::RoundSimulator simulator(std::move(config), std::move(churn));

  std::cout << "== churn storm: 200 online -> 60 (storm at round 3) -> 240 "
               "(recovery at round 10) ==\n";
  const auto metrics = simulator.propagate_update(
      common::PeerId(0), "config", "new-topology-v2");

  std::cout << "round  online  aware  push  pull  (per round)\n";
  for (const auto& r : metrics.rounds) {
    std::cout << "  " << r.round << "\t" << r.online << "\t" << r.aware_online
              << "\t" << r.push_messages << "\t" << r.pull_messages << "\n";
  }

  std::cout << "\nfinal awareness among online peers: "
            << common::format_double(100 * metrics.final_aware_fraction(), 1)
            << "%\n"
            << "push messages: " << metrics.total_push_messages()
            << ", pull messages: " << metrics.total_pull_messages() << "\n"
            << "The storm interrupts the push; returning peers reconcile via "
               "pull,\nwhich is exactly the hybrid's division of labour "
               "(paper §3, §7.2).\n";
  return 0;
}
