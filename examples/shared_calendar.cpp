// Shared calendar — one of the paper's motivating applications (§1:
// "bulletin-board systems, shared calendars or address books").
//
// A team of mostly-offline peers replicates a calendar. Members add and
// edit entries over continuous time while churning on and off; concurrent
// edits to the same slot coexist as versions (paper §3) and queries resolve
// them with the §4.4 rules. Demonstrates the event-driven engine, the pull
// phase, tombstoned deletions, and multi-replica query resolution.
#include <iostream>

#include "analysis/forward_probability.hpp"
#include "sim/event_simulator.hpp"

using namespace updp2p;

namespace {

void show(const char* when, const std::optional<version::VersionedValue>& v) {
  std::cout << "  " << when << ": ";
  if (!v.has_value()) {
    std::cout << "(no entry)\n";
  } else {
    std::cout << '"' << v->payload << "\" [history " << v->history.to_string()
              << "]\n";
  }
}

}  // namespace

int main() {
  sim::EventSimConfig config;
  config.population = 120;             // team + their devices
  config.mean_online_time = 40.0;      // minutes-scale sessions,
  config.mean_offline_time = 120.0;    // 25% availability
  config.round_duration = 1.0;
  config.gossip.estimated_total_replicas = config.population;
  // Small replica groups at low availability are near-critical (the Fig 1a
  // lesson): provision a generous fanout so pushes reliably take off.
  config.gossip.fanout_fraction = 0.15;
  config.gossip.forward_probability = analysis::pf_geometric(0.95);
  // Eager §3 pull: reconnecting devices reconcile immediately, so reads are
  // fresh even between sparse updates. The §6 lazy variant saves pull
  // traffic at a freshness cost — quantified in bench/pull_phase.
  config.gossip.pull.lazy = false;
  config.gossip.pull.contacts_per_attempt = 3;
  config.gossip.pull.no_update_timeout = 40;
  config.gossip.acks.enabled = true;   // §6 ack optimisation
  config.gossip.acks.suppression_rounds = 8;
  config.seed = 7;

  sim::EventSimulator calendar(config);

  std::cout << "== shared calendar over " << config.population
            << " mostly-offline peers ==\n";

  // Alice books the meeting room.
  calendar.schedule_publish(5.0, "fri-10am", "standup (booked by alice)");
  calendar.run_until(40.0);
  show("t=40, after alice's booking",
       calendar.query("fri-10am", 3, gossip::QueryRule::kLatestVersion));

  // Bob reschedules it — a causally newer version.
  calendar.schedule_publish(45.0, "fri-10am", "standup moved to 10:30 (bob)");
  calendar.run_until(90.0);
  show("t=90, after bob's edit",
       calendar.query("fri-10am", 3, gossip::QueryRule::kLatestVersion));

  // Carol and Dave edit *concurrently* from two partitions of the network:
  // both versions will coexist until a query resolves them (§3, §4.4).
  // (Scheduled within one network latency of each other, so neither writer
  // can have seen the other's version: guaranteed concurrent.)
  calendar.schedule_publish(95.0, "fri-2pm", "design review (carol)",
                            common::PeerId(10));
  calendar.schedule_publish(95.01, "fri-2pm", "1:1 with dave",
                            common::PeerId(90));
  calendar.run_until(160.0);
  show("t=160, latest-version rule",
       calendar.query("fri-2pm", 10, gossip::QueryRule::kLatestVersion));
  show("t=160, majority rule",
       calendar.query("fri-2pm", 10, gossip::QueryRule::kMajority));
  show("t=160, hybrid rule",
       calendar.query("fri-2pm", 10, gossip::QueryRule::kHybrid));

  // Count how many replicas hold both concurrent versions.
  std::size_t with_conflict = 0;
  for (std::uint32_t i = 0; i < calendar.population(); ++i) {
    if (calendar.node(common::PeerId(i)).store().versions("fri-2pm").size() >
        1) {
      ++with_conflict;
    }
  }
  std::cout << "  replicas holding both concurrent fri-2pm versions: "
            << with_conflict << "\n";

  // The standup is cancelled: a tombstone (death certificate) propagates
  // exactly like an update. We let the network converge first so the
  // canceller has seen bob's edit — a *stale* canceller would produce a
  // tombstone concurrent with the edit, and the deterministic §4.4 rule
  // would have to arbitrate (eventual-consistency semantics, not a bug).
  calendar.run_until(280.0);
  calendar.schedule_remove(280.0, "fri-10am");
  std::cout << "  fri-10am cancelled at t=280 (tombstone pushed)\n";
  calendar.run_until(500.0);
  show("t=500, after cancellation",
       calendar.query("fri-10am", 5, gossip::QueryRule::kLatestVersion));

  const auto& stats = calendar.stats();
  std::cout << "\nprotocol totals: " << stats.push_messages << " push, "
            << stats.pull_messages << " pull, " << stats.ack_messages
            << " ack messages over " << stats.reconnects << " reconnects\n";
  return 0;
}
