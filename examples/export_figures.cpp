// export_figures — regenerates the paper's figure series and writes them
// as CSV for external plotting (gnuplot/matplotlib).
//
//   ./build/examples/export_figures --out /tmp/updp2p_figures
//   ./build/examples/export_figures --out data --figure fig3
//
// Each CSV has rows (series-label, F_aware, messages_per_initial_online),
// one file per figure — the exact series the bench binaries print.
#include <iostream>
#include <string>

#include "analysis/push_model.hpp"
#include "common/args.hpp"
#include "common/csv.hpp"
#include "common/table.hpp"

using namespace updp2p;

namespace {

std::vector<std::vector<std::string>> series_rows(
    const std::vector<common::Series>& series_list) {
  std::vector<std::vector<std::string>> rows{{"series", "f_aware",
                                              "msgs_per_initial_online"}};
  for (const auto& series : series_list) {
    for (std::size_t i = 0; i < series.size(); ++i) {
      rows.push_back({series.label, common::format_double(series.x[i], 6),
                      common::format_double(series.y[i], 6)});
    }
  }
  return rows;
}

std::vector<common::Series> figure1() {
  std::vector<common::Series> out;
  for (const double online : {100.0, 500.0, 1'000.0, 3'000.0, 10'000.0}) {
    analysis::PushModelParams params;
    params.total_replicas = 10'000;
    params.initial_online = online;
    params.sigma = 0.95;
    params.fanout_fraction = 0.01;
    out.push_back(analysis::evaluate_push(params).to_series(
        "R_on0=" + std::to_string(static_cast<int>(online))));
  }
  return out;
}

std::vector<common::Series> figure2() {
  std::vector<common::Series> out;
  for (const double f_r : {0.005, 0.01, 0.02, 0.05}) {
    analysis::PushModelParams params;
    params.total_replicas = 10'000;
    params.initial_online = 1'000;
    params.sigma = 0.9;
    params.fanout_fraction = f_r;
    out.push_back(analysis::evaluate_push(params).to_series(
        "f_r=" + common::format_double(f_r, 3)));
  }
  return out;
}

std::vector<common::Series> figure3() {
  std::vector<common::Series> out;
  for (const double sigma : {1.0, 0.95, 0.8, 0.7, 0.5}) {
    analysis::PushModelParams params;
    params.total_replicas = 10'000;
    params.initial_online = 1'000;
    params.sigma = sigma;
    params.fanout_fraction = 0.01;
    out.push_back(analysis::evaluate_push(params).to_series(
        "sigma=" + common::format_double(sigma, 2)));
  }
  return out;
}

std::vector<common::Series> figure4() {
  std::vector<common::Series> out;
  const std::vector<analysis::PfSchedule> schedules = {
      analysis::pf_constant(1.0),     analysis::pf_constant(0.8),
      analysis::pf_linear_decay(0.1), analysis::pf_geometric(0.9),
      analysis::pf_geometric(0.7),    analysis::pf_geometric(0.5)};
  for (const auto& schedule : schedules) {
    analysis::PushModelParams params;
    params.total_replicas = 10'000;
    params.initial_online = 1'000;
    params.sigma = 0.9;
    params.fanout_fraction = 0.01;
    params.pf = schedule;
    out.push_back(analysis::evaluate_push(params).to_series(schedule.label));
  }
  return out;
}

std::vector<common::Series> figure5() {
  std::vector<common::Series> out;
  for (const double total : {1e4, 1e5, 1e6, 1e7, 1e8}) {
    analysis::PushModelParams params;
    params.total_replicas = total;
    params.initial_online = 0.1 * total;
    params.sigma = 1.0;
    params.fanout_fraction = 100.0 / total;
    params.pf = analysis::pf_offset_geometric(0.8, 0.7, 0.2);
    char label[32];
    std::snprintf(label, sizeof label, "R=%.0e", total);
    out.push_back(analysis::evaluate_push(params).to_series(label));
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const common::Args args(argc, argv);
  const std::string out_dir = args.get_string("out", ".");
  const std::string only = args.get_string("figure", "");

  const std::pair<const char*, std::vector<common::Series> (*)()> figures[] =
      {{"fig1", figure1}, {"fig2", figure2}, {"fig3", figure3},
       {"fig4", figure4}, {"fig5", figure5}};

  int written = 0;
  for (const auto& [name, generate] : figures) {
    if (!only.empty() && only != name) continue;
    if (common::write_csv_file(out_dir, name, series_rows(generate()))) {
      std::cout << "wrote " << out_dir << "/" << name << ".csv\n";
      ++written;
    } else {
      std::cerr << "FAILED to write " << out_dir << "/" << name << ".csv\n";
      return 1;
    }
  }
  if (written == 0) {
    std::cerr << "unknown --figure value; use fig1..fig5\n";
    return 1;
  }
  std::cout << written << " file(s) written. Plot columns 2 (x=F_aware) vs "
               "3 (y=msgs/R_on[0]) grouped by column 1.\n";
  return 0;
}
