// E-commerce catalogue on P-Grid — the paper's host system (§1: "peer
// commerce … e-commerce catalogues"; §3: in P-Grid the replicas of one key-
// space partition form the update population).
//
// Builds a P-Grid trie over 512 peers, routes queries to the partition
// responsible for each catalogue item, and runs the hybrid push/pull update
// protocol *inside* that partition's replica group when a price changes.
#include <iostream>
#include <unordered_set>

#include "analysis/forward_probability.hpp"
#include "common/table.hpp"
#include "churn/churn_model.hpp"
#include "pgrid/pgrid.hpp"
#include "sim/round_simulator.hpp"

using namespace updp2p;

int main() {
  // --- 1. Build the P-Grid index ------------------------------------------
  pgrid::PGridConfig grid_config;
  grid_config.peers = 512;
  grid_config.depth = 3;  // 8 partitions, 64 replicas each
  grid_config.refs_per_level = 4;
  grid_config.seed = 11;
  const auto grid = pgrid::PGridNetwork::build(grid_config);
  std::cout << "P-Grid: " << grid.peer_count() << " peers, depth "
            << static_cast<int>(grid.depth()) << " => "
            << (1 << grid.depth()) << " partitions\n";

  // --- 2. Route a catalogue lookup under 30% availability -------------------
  common::Rng rng(99);
  churn::StaticChurn availability(grid_config.peers, 0.30);
  availability.reset(rng);
  const auto is_online = [&availability](common::PeerId peer) {
    return availability.is_online(peer);
  };

  const std::string item = "sku/espresso-machine";
  const auto key = pgrid::BitPath::from_key(item, 64);
  const auto origin = availability.online().online_peers().front();
  const auto search =
      grid.search_with_retries(origin, key, is_online, rng, 10);
  std::cout << "lookup \"" << item << "\" from peer " << origin.value()
            << ": " << (search.found ? "found" : "FAILED") << " at peer "
            << (search.found ? std::to_string(search.responsible.value())
                             : "-")
            << " after " << search.hops << " hops / " << search.attempts
            << " probes\n";

  // --- 3. Update the item inside its replica group --------------------------
  const auto& group = grid.replica_group(key);
  std::cout << "replica group for partition "
            << grid.partition_of(key).to_string() << ": " << group.size()
            << " replicas\n";

  // Host just this replica group in the round simulator. Group members get
  // dense local ids 0..|group|-1 for the simulation.
  sim::RoundSimConfig sim_config;
  sim_config.population = group.size();
  sim_config.gossip.estimated_total_replicas = group.size();
  sim_config.gossip.fanout_fraction = 8.0 / static_cast<double>(group.size());
  sim_config.gossip.forward_probability = analysis::pf_geometric(0.9);
  sim_config.seed = 5;
  auto churn = std::make_unique<churn::BernoulliChurn>(
      sim_config.population, 0.30, 0.98, 0.05);
  sim::RoundSimulator simulator(std::move(sim_config), std::move(churn));

  const auto metrics =
      simulator.propagate_update(std::nullopt, item, "price: 249 EUR");
  std::cout << "price update: " << metrics.total_push_messages()
            << " push messages ("
            << common::format_double(metrics.messages_per_initial_online(), 2)
            << "/online replica), "
            << common::format_double(100 * metrics.final_aware_fraction(), 1)
            << "% of online replicas updated in "
            << metrics.rounds_to_quiescence() << " rounds\n";

  // Peers that were offline catch up via pull as they churn back online.
  simulator.run_rounds(120);
  std::size_t consistent = 0;
  for (std::uint32_t i = 0; i < simulator.population(); ++i) {
    const auto value = simulator.node(common::PeerId(i)).read(item);
    if (value.has_value() && value->payload == "price: 249 EUR") ++consistent;
  }
  std::cout << "after 60 rounds of churn + pull: " << consistent << "/"
            << simulator.population()
            << " replicas (online AND offline) hold the new price\n";
  return 0;
}
