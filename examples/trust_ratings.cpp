// Trust management — the paper's very first motivating application (§1:
// "for example trust management [2] or peer commerce … updates in fact may
// occur frequently", citing Aberer & Despotovic, CIKM 2001).
//
// A replica group maintains complaint records about trading peers. Every
// bad transaction appends a complaint (an update); trust checks are §4.4
// queries. Because complaints arrive continuously from many witnesses,
// this is exactly the frequent-update regime the paper designed for: the
// push phase spreads complaints fast; peers returning from offline pull
// what they missed before vouching for anyone.
#include <iostream>

#include "analysis/forward_probability.hpp"
#include "sim/event_simulator.hpp"

using namespace updp2p;

namespace {

std::string complaint_key(int trader) {
  return "complaints/trader-" + std::to_string(trader);
}

int complaint_count(const std::optional<version::VersionedValue>& record) {
  if (!record.has_value()) return 0;
  // Payload format: "count=N;last=..."; count is the writer's tally.
  const auto pos = record->payload.find("count=");
  if (pos == std::string::npos) return 0;
  return std::atoi(record->payload.c_str() + pos + 6);
}

}  // namespace

int main() {
  sim::EventSimConfig config;
  config.population = 200;          // the reputation replica group
  config.mean_online_time = 50.0;
  config.mean_offline_time = 150.0; // 25% availability
  config.gossip.estimated_total_replicas = config.population;
  config.gossip.fanout_fraction = 0.10;
  config.gossip.forward_probability = analysis::pf_geometric(0.95);
  config.gossip.pull.no_update_timeout = 30;
  config.seed = 404;
  sim::EventSimulator network(config);

  std::cout << "== decentralised trust management over " << config.population
            << " mostly-offline peers ==\n";

  // Trader 7 misbehaves repeatedly; each witness updates the complaint
  // record having first read (and causally extending) the current one.
  double t = 5.0;
  int complaints = 0;
  for (int incident = 1; incident <= 4; ++incident) {
    ++complaints;
    network.schedule_publish(
        t, complaint_key(7),
        "count=" + std::to_string(complaints) + ";last=incident-" +
            std::to_string(incident));
    t += 60.0;
  }
  // Trader 12 has a single old complaint.
  network.schedule_publish(20.0, complaint_key(12), "count=1;last=dispute");

  network.run_until(300.0);

  // A buyer checks both traders before committing to a deal.
  for (const int trader : {7, 12, 31}) {
    const auto record = network.query(complaint_key(trader), 5,
                                      gossip::QueryRule::kLatestVersion);
    const int count = complaint_count(record);
    std::cout << "trader " << trader << ": " << count << " complaint(s) -> "
              << (count == 0 ? "TRUSTED"
                             : count < 3 ? "CAUTION" : "DO NOT TRADE")
              << (record.has_value()
                      ? "  [" + record->payload + "]"
                      : "")
              << "\n";
  }

  // How consistent is the network's view of the repeat offender?
  const auto latest = network.query(complaint_key(7), 5,
                                    gossip::QueryRule::kLatestVersion);
  if (latest.has_value()) {
    std::size_t current = 0;
    for (std::uint32_t i = 0; i < network.population(); ++i) {
      const auto local =
          network.node(common::PeerId(i)).read(complaint_key(7));
      if (local.has_value() && local->id == latest->id) ++current;
    }
    std::cout << "\nreplicas holding the newest complaint record for "
                 "trader 7: "
              << current << "/" << network.population() << "\n";
  }
  const auto& stats = network.stats();
  std::cout << "traffic: " << stats.push_messages << " push / "
            << stats.pull_messages << " pull messages for "
            << (complaints + 1) << " rating updates\n";
  return 0;
}
