// updp2p-peerd — one live gossip peer as an OS process.
//
// Runs a runtime::PeerRuntime over net::UdpTransport on 127.0.0.1 (or any
// IPv4 address): the same ReplicaNode the simulators drive, now exchanging
// real datagrams with retry/timeout/backoff. A small status-file protocol
// makes the daemon observable without flaky sleeps — orchestrators (and
// tests/integration/live_convergence_test) poll the file for lines:
//
//   READY <port>            socket bound, runtime online
//   PUBLISHED <key> <hex>   local publish executed (hex = version id)
//   HAVE <key> <hex>        the watched key is now stored locally
//
// Example: three peers, one publishing after 200 ms (one command per line):
//   updp2p-peerd --self 0 --port 9100 --peers 1:9101,2:9102
//       --publish-key greeting --publish-value hello --publish-at-ms 200 &
//   updp2p-peerd --self 1 --port 9101 --peers 0:9100,2:9102 --watch greeting &
//   updp2p-peerd --self 2 --port 9102 --peers 0:9100,1:9101 --watch greeting &
#include <chrono>
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "common/args.hpp"
#include "net/udp_transport.hpp"
#include "runtime/peer_runtime.hpp"

using namespace updp2p;

namespace {

/// Parses "id:port,id:port,..." into directory entries on `host`.
std::vector<net::UdpPeerAddress> parse_peers(const std::string& spec,
                                             const std::string& host) {
  std::vector<net::UdpPeerAddress> peers;
  std::size_t begin = 0;
  while (begin < spec.size()) {
    std::size_t end = spec.find(',', begin);
    if (end == std::string::npos) end = spec.size();
    const std::string entry = spec.substr(begin, end - begin);
    const std::size_t colon = entry.find(':');
    if (colon == std::string::npos) {
      std::cerr << "bad --peers entry (want id:port): " << entry << "\n";
      std::exit(2);
    }
    net::UdpPeerAddress peer;
    peer.id = common::PeerId(
        static_cast<std::uint32_t>(std::stoul(entry.substr(0, colon))));
    peer.host = host;
    peer.port =
        static_cast<std::uint16_t>(std::stoul(entry.substr(colon + 1)));
    peers.push_back(peer);
    begin = end + 1;
  }
  return peers;
}

/// Append-only, flushed-per-line status channel.
class StatusFile {
 public:
  explicit StatusFile(const std::string& path) {
    if (!path.empty()) file_ = std::fopen(path.c_str(), "a");
  }
  ~StatusFile() {
    if (file_ != nullptr) std::fclose(file_);
  }
  void line(const std::string& text) {
    if (file_ != nullptr) {
      std::fputs((text + "\n").c_str(), file_);
      std::fflush(file_);
    }
    std::cout << text << "\n";
  }

 private:
  std::FILE* file_ = nullptr;
};

}  // namespace

int main(int argc, char** argv) {
  const common::Args args(argc, argv);
  if (!args.has("self") || !args.has("port")) {
    std::cerr
        << "usage: updp2p-peerd --self ID --port P [--peers id:port,...]\n"
        << "  [--host 127.0.0.1] [--status FILE] [--watch KEY]\n"
        << "  [--publish-key K --publish-value V [--publish-at-ms T]]\n"
        << "  [--run-ms T] [--seed S] [--round-ms T] [--fanout F]\n"
        << "  [--population N] [--acks 0|1] [--retry-initial-ms T]\n"
        << "  [--retry-max-attempts N] [--pull-contacts N]\n";
    return 2;
  }

  const auto self = common::PeerId(
      static_cast<std::uint32_t>(args.get_int("self", 0)));
  const std::string host = args.get_string("host", "127.0.0.1");

  net::UdpTransportConfig transport_config;
  transport_config.self = self;
  transport_config.bind_host = host;
  transport_config.bind_port =
      static_cast<std::uint16_t>(args.get_int("port", 0));
  transport_config.peers = parse_peers(args.get_string("peers", ""), host);

  std::string error;
  auto transport = net::UdpTransport::open(transport_config, &error);
  if (!transport) {
    std::cerr << "updp2p-peerd: " << error << "\n";
    return 1;
  }

  runtime::RuntimeConfig config;
  config.seed = static_cast<std::uint64_t>(args.get_int("seed", 0x5eed));
  config.round_duration = args.get_double("round-ms", 250.0) / 1000.0;
  config.gossip.fanout_fraction = args.get_double("fanout", 0.5);
  config.gossip.estimated_total_replicas = static_cast<std::size_t>(
      args.get_int("population", 1 + static_cast<std::int64_t>(
                                         transport_config.peers.size())));
  config.gossip.acks.enabled = args.get_bool("acks", true);
  config.gossip.pull.contacts_per_attempt =
      static_cast<unsigned>(args.get_int("pull-contacts", 2));
  config.gossip.pull.no_update_timeout =
      static_cast<common::Round>(args.get_int("pull-timeout-rounds", 8));
  config.retry.initial_timeout =
      args.get_double("retry-initial-ms", 100.0) / 1000.0;
  config.retry.max_attempts =
      static_cast<unsigned>(args.get_int("retry-max-attempts", 5));
  config.retry.max_timeout = args.get_double("retry-max-ms", 2000.0) / 1000.0;
  config.tick_duration = 0.01;
  // Constructed offline, then go_online(): a (re)started daemon enters the
  // §3 reconnect path and pulls what it missed while it was dead.
  config.start_online = false;

  runtime::PeerRuntime peer(config, *transport);
  std::vector<common::PeerId> view;
  view.reserve(transport_config.peers.size());
  for (const auto& entry : transport_config.peers) {
    if (entry.id != self) view.push_back(entry.id);
  }
  peer.bootstrap(view);
  peer.go_online();

  StatusFile status(args.get_string("status", ""));
  status.line("READY " + std::to_string(transport->bound_port()));

  const std::string publish_key = args.get_string("publish-key", "");
  const std::string publish_value = args.get_string("publish-value", "");
  const double publish_at =
      args.get_double("publish-at-ms", 0.0) / 1000.0;
  const std::string watch_key = args.get_string("watch", "");
  const double run_for = args.get_double("run-ms", 0.0) / 1000.0;

  bool published = publish_key.empty();
  bool have_reported = false;

  const auto start = std::chrono::steady_clock::now();
  const auto elapsed = [&start] {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start)
        .count();
  };

  for (;;) {
    const double now = elapsed();
    if (run_for > 0.0 && now >= run_for) break;
    peer.poll(now);

    if (!published && now >= publish_at) {
      published = true;
      if (const auto id = peer.publish(publish_key, publish_value)) {
        status.line("PUBLISHED " + publish_key + " " + id->to_string());
      }
    }
    if (!watch_key.empty() && !have_reported) {
      if (const auto value = peer.read(watch_key)) {
        have_reported = true;
        status.line("HAVE " + watch_key + " " + value->id.to_string());
      }
    }

    // Sleep inside poll(2): wake on datagram arrival, the next timer
    // deadline, or a 20 ms cadence tick, whichever is first.
    double timeout_s = 0.02;
    if (const auto deadline = peer.next_deadline()) {
      timeout_s = std::min(timeout_s, *deadline - elapsed());
    }
    const int timeout_ms =
        timeout_s <= 0.0
            ? 0
            : static_cast<int>(timeout_s * 1000.0) + 1;
    (void)transport->wait_readable(timeout_ms);
  }

  return 0;
}
