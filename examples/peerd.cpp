// updp2p-peerd — one live gossip peer as an OS process.
//
// Runs a runtime::PeerRuntime over net::UdpTransport on 127.0.0.1 (or any
// IPv4 address): the same ReplicaNode the simulators drive, now exchanging
// real datagrams with retry/timeout/backoff. A small status-file protocol
// makes the daemon observable without flaky sleeps — orchestrators (and
// tests/integration/live_convergence_test) poll the file for lines:
//
//   READY <port>            socket bound, runtime online
//   RECOVERED <values> <replayed>  durable store opened (with --data-dir):
//                           snapshot values applied + WAL frames replayed
//   PUBLISHED <key> <hex>   local publish executed (hex = version id)
//   HAVE <key> <hex>        the watched key is now stored locally
//   PULLBYTES <n>           pull-response bytes received up to HAVE time
//   STATE <hex>             store content digest at HAVE time
//
// The status file is replaced atomically on every line (write temp +
// fsync + rename + directory fsync), so a polling orchestrator never
// observes a torn line — and a crash never leaves a half-written file.
//
// Example: three peers, one publishing after 200 ms (one command per line):
//   updp2p-peerd --self 0 --port 9100 --peers 1:9101,2:9102
//       --publish-key greeting --publish-value hello --publish-at-ms 200 &
//   updp2p-peerd --self 1 --port 9101 --peers 0:9100,2:9102 --watch greeting &
//   updp2p-peerd --self 2 --port 9102 --peers 0:9100,1:9101 --watch greeting &
#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "common/args.hpp"
#include "net/udp_transport.hpp"
#include "runtime/peer_runtime.hpp"

using namespace updp2p;

namespace {

/// Parses "id:port,id:port,..." into directory entries on `host`.
std::vector<net::UdpPeerAddress> parse_peers(const std::string& spec,
                                             const std::string& host) {
  std::vector<net::UdpPeerAddress> peers;
  std::size_t begin = 0;
  while (begin < spec.size()) {
    std::size_t end = spec.find(',', begin);
    if (end == std::string::npos) end = spec.size();
    const std::string entry = spec.substr(begin, end - begin);
    const std::size_t colon = entry.find(':');
    if (colon == std::string::npos) {
      std::cerr << "bad --peers entry (want id:port): " << entry << "\n";
      std::exit(2);
    }
    net::UdpPeerAddress peer;
    peer.id = common::PeerId(
        static_cast<std::uint32_t>(std::stoul(entry.substr(0, colon))));
    peer.host = host;
    peer.port =
        static_cast<std::uint16_t>(std::stoul(entry.substr(colon + 1)));
    peers.push_back(peer);
    begin = end + 1;
  }
  return peers;
}

/// Status channel: the file is atomically REPLACED on every line (tmp +
/// fsync + rename + dir fsync) so a polling reader sees either the old
/// contents or old-plus-the-new-line, never a torn write — the same
/// discipline the durable store's snapshot writer uses.
class StatusFile {
 public:
  explicit StatusFile(std::string path) : path_(std::move(path)) {}

  void line(const std::string& text) {
    std::cout << text << "\n";
    if (path_.empty()) return;
    content_ += text;
    content_ += '\n';
    if (!replace_atomically()) {
      std::cerr << "updp2p-peerd: status write failed: " << path_ << ": "
                << std::strerror(errno) << "\n";
    }
  }

 private:
  [[nodiscard]] bool replace_atomically() const {
    const std::string tmp = path_ + ".tmp";
    const int fd = ::open(tmp.c_str(), O_CREAT | O_WRONLY | O_TRUNC, 0644);
    if (fd < 0) return false;
    std::size_t written = 0;
    while (written < content_.size()) {
      const ssize_t n =
          ::write(fd, content_.data() + written, content_.size() - written);
      if (n < 0) {
        if (errno == EINTR) continue;
        ::close(fd);
        return false;
      }
      written += static_cast<std::size_t>(n);
    }
    if (::fsync(fd) != 0 || ::close(fd) != 0) return false;
    if (::rename(tmp.c_str(), path_.c_str()) != 0) return false;
    const std::size_t slash = path_.find_last_of('/');
    const std::string dir =
        slash == std::string::npos ? std::string(".") : path_.substr(0, slash);
    const int dir_fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
    if (dir_fd < 0) return false;
    const bool ok = ::fsync(dir_fd) == 0;
    ::close(dir_fd);
    return ok;
  }

  std::string path_;
  std::string content_;
};

}  // namespace

int main(int argc, char** argv) {
  const common::Args args(argc, argv);
  if (!args.has("self") || !args.has("port")) {
    std::cerr
        << "usage: updp2p-peerd --self ID --port P [--peers id:port,...]\n"
        << "  [--host 127.0.0.1] [--status FILE] [--watch KEY]\n"
        << "  [--publish-key K --publish-value V [--publish-at-ms T]]\n"
        << "  [--run-ms T] [--seed S] [--round-ms T] [--fanout F]\n"
        << "  [--population N] [--acks 0|1] [--retry-initial-ms T]\n"
        << "  [--retry-max-attempts N] [--pull-contacts N]\n"
        << "  [--data-dir DIR] [--snapshot-every N]\n"
        << "  [--snapshot-interval-ms T] [--fsync-appends 0|1]\n";
    return 2;
  }

  const auto self = common::PeerId(
      static_cast<std::uint32_t>(args.get_int("self", 0)));
  const std::string host = args.get_string("host", "127.0.0.1");

  net::UdpTransportConfig transport_config;
  transport_config.self = self;
  transport_config.bind_host = host;
  transport_config.bind_port =
      static_cast<std::uint16_t>(args.get_int("port", 0));
  transport_config.peers = parse_peers(args.get_string("peers", ""), host);

  std::string error;
  auto transport = net::UdpTransport::open(transport_config, &error);
  if (!transport) {
    std::cerr << "updp2p-peerd: " << error << "\n";
    return 1;
  }

  runtime::RuntimeConfig config;
  config.seed = static_cast<std::uint64_t>(args.get_int("seed", 0x5eed));
  config.round_duration = args.get_double("round-ms", 250.0) / 1000.0;
  config.gossip.fanout_fraction = args.get_double("fanout", 0.5);
  config.gossip.estimated_total_replicas = static_cast<std::size_t>(
      args.get_int("population", 1 + static_cast<std::int64_t>(
                                         transport_config.peers.size())));
  config.gossip.acks.enabled = args.get_bool("acks", true);
  config.gossip.pull.contacts_per_attempt =
      static_cast<unsigned>(args.get_int("pull-contacts", 2));
  config.gossip.pull.no_update_timeout =
      static_cast<common::Round>(args.get_int("pull-timeout-rounds", 8));
  config.retry.initial_timeout =
      args.get_double("retry-initial-ms", 100.0) / 1000.0;
  config.retry.max_attempts =
      static_cast<unsigned>(args.get_int("retry-max-attempts", 5));
  config.retry.max_timeout = args.get_double("retry-max-ms", 2000.0) / 1000.0;
  config.tick_duration = 0.01;
  // Constructed offline, then go_online(): a (re)started daemon enters the
  // §3 reconnect path and pulls what it missed while it was dead.
  config.start_online = false;
  // Durable store: with --data-dir the constructor below recovers
  // snapshot + WAL from disk before the socket goes live.
  config.store.data_dir = args.get_string("data-dir", "");
  config.store.snapshot_every_records =
      static_cast<std::uint64_t>(args.get_int("snapshot-every", 256));
  config.store.snapshot_interval =
      args.get_double("snapshot-interval-ms", 0.0) / 1000.0;
  config.store.fsync_appends = args.get_bool("fsync-appends", false);

  runtime::PeerRuntime peer(config, *transport);
  if (config.store.enabled() && !peer.durable()) {
    std::cerr << "updp2p-peerd: durable store failed to open: "
              << peer.store_error() << "\n";
    return 1;
  }
  std::vector<common::PeerId> view;
  view.reserve(transport_config.peers.size());
  for (const auto& entry : transport_config.peers) {
    if (entry.id != self) view.push_back(entry.id);
  }
  peer.bootstrap(view);
  peer.go_online();

  StatusFile status(args.get_string("status", ""));
  status.line("READY " + std::to_string(transport->bound_port()));
  if (peer.durable()) {
    status.line("RECOVERED " +
                std::to_string(peer.stats().snapshot_values_recovered) + " " +
                std::to_string(peer.stats().wal_replayed));
  }

  const std::string publish_key = args.get_string("publish-key", "");
  const std::string publish_value = args.get_string("publish-value", "");
  const double publish_at =
      args.get_double("publish-at-ms", 0.0) / 1000.0;
  const std::string watch_key = args.get_string("watch", "");
  const double run_for = args.get_double("run-ms", 0.0) / 1000.0;

  bool published = publish_key.empty();
  bool have_reported = false;

  const auto start = std::chrono::steady_clock::now();
  const auto elapsed = [&start] {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start)
        .count();
  };

  for (;;) {
    const double now = elapsed();
    if (run_for > 0.0 && now >= run_for) break;
    peer.poll(now);

    if (!published && now >= publish_at) {
      published = true;
      if (const auto id = peer.publish(publish_key, publish_value)) {
        status.line("PUBLISHED " + publish_key + " " + id->to_string());
      }
    }
    if (!watch_key.empty() && !have_reported) {
      if (const auto value = peer.read(watch_key)) {
        have_reported = true;
        status.line("HAVE " + watch_key + " " + value->id.to_string());
        // Exact reconnect-cost accounting, snapshotted at HAVE time: a
        // peer that recovered the key from disk reports strictly fewer
        // pull-response bytes than one that pulled from zero.
        status.line("PULLBYTES " +
                    std::to_string(peer.stats().pull_response_bytes_in));
        status.line("STATE " +
                    peer.node().store().content_digest().to_hex());
      }
    }

    // Sleep inside poll(2): wake on datagram arrival, the next timer
    // deadline, or a 20 ms cadence tick, whichever is first.
    double timeout_s = 0.02;
    if (const auto deadline = peer.next_deadline()) {
      timeout_s = std::min(timeout_s, *deadline - elapsed());
    }
    const int timeout_ms =
        timeout_s <= 0.0
            ? 0
            : static_cast<int>(timeout_s * 1000.0) + 1;
    (void)transport->wait_readable(timeout_ms);
  }

  return 0;
}
