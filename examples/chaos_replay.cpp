// updp2p-chaos — run, sweep, shrink and replay chaos scenarios.
//
// Usage:
//   updp2p-chaos --list
//   updp2p-chaos --scenario partition-heal --seed 7
//   updp2p-chaos --scenario repro.chaos --seed 7 --mutate drop-pull-responses
//   updp2p-chaos --scenario combined-storm --sweep-seeds 16 --threads 8
//   updp2p-chaos --scenario canary-pull-recovery --seed 3
//       --mutate drop-pull-responses --shrink minimized.chaos
//
// --scenario names a builtin (see --list) or a script file path. Exit
// status: 0 when every run passed its property checks, 1 otherwise —
// which is what lets the shrinker's printed repro command double as a CI
// assertion.
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "chaos/engine.hpp"
#include "chaos/scenarios.hpp"
#include "chaos/shrink.hpp"
#include "common/args.hpp"

namespace {

using namespace updp2p;

std::optional<chaos::Scenario> load_scenario(const std::string& name) {
  if (auto builtin = chaos::find_scenario(name)) return builtin;
  std::ifstream in(name);
  if (!in) {
    std::fprintf(stderr, "updp2p-chaos: '%s' is neither a builtin scenario "
                 "nor a readable file (try --list)\n", name.c_str());
    return std::nullopt;
  }
  std::ostringstream text;
  text << in.rdbuf();
  std::string error;
  auto scenario = chaos::parse_scenario(text.str(), &error);
  if (!scenario) {
    std::fprintf(stderr, "updp2p-chaos: %s: %s\n", name.c_str(),
                 error.c_str());
  }
  return scenario;
}

void print_report(const chaos::ChaosReport& report, bool verbose) {
  std::printf("scenario %-24s seed %-6llu digest %s  %s\n",
              report.scenario.c_str(),
              static_cast<unsigned long long>(report.seed),
              report.trace_digest.to_hex().c_str(),
              report.passed() ? "PASS" : "FAIL");
  if (verbose) {
    for (const std::string& line : report.trace) {
      std::printf("  %s\n", line.c_str());
    }
    std::printf("  published=%zu delivered=%llu dropped{loss=%llu "
                "policy=%llu offline=%llu} duplicated=%llu\n",
                report.published,
                static_cast<unsigned long long>(
                    report.network.datagrams_delivered),
                static_cast<unsigned long long>(report.network.dropped_loss),
                static_cast<unsigned long long>(
                    report.network.dropped_policy),
                static_cast<unsigned long long>(
                    report.network.dropped_offline),
                static_cast<unsigned long long>(
                    report.network.datagrams_duplicated));
  }
  for (const std::string& violation : report.violations) {
    std::printf("  VIOLATION: %s\n", violation.c_str());
  }
}

}  // namespace

int main(int argc, char** argv) {
  const common::Args args(argc, argv);

  if (args.get_bool("list", false)) {
    for (const chaos::Scenario& scenario : chaos::builtin_scenarios()) {
      std::printf("%-24s population=%zu phases=%zu duration=%.1fs%s\n",
                  scenario.name.c_str(), scenario.population,
                  scenario.phases.size(), scenario.total_duration(),
                  scenario.durable.empty() ? "" : " durable");
    }
    return 0;
  }

  const std::string name = args.get_string("scenario", "");
  if (name.empty()) {
    std::fprintf(stderr,
                 "usage: updp2p-chaos --scenario <name|file> [--seed N] "
                 "[--mutate <name>] [--sweep-seeds N] [--threads N] "
                 "[--shrink <out-file>] [--trace] [--data-root DIR] "
                 "| --list\n");
    return 2;
  }
  const auto scenario = load_scenario(name);
  if (!scenario) return 2;

  chaos::ChaosOptions options;
  options.data_root = args.get_string(
      "data-root", "/tmp/updp2p-chaos-" + scenario->name);
  options.mutation = chaos::mutation_from_string(
      args.get_string("mutate", "none"));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 1));

  const auto sweep = static_cast<std::size_t>(args.get_int("sweep-seeds", 0));
  if (sweep > 0) {
    std::vector<std::uint64_t> seeds;
    for (std::size_t i = 0; i < sweep; ++i) seeds.push_back(seed + i);
    const auto threads =
        static_cast<unsigned>(args.get_int("threads", 1));
    options.keep_trace = false;
    const auto reports =
        chaos::run_seed_sweep(*scenario, seeds, options, threads);
    bool all_passed = true;
    for (const chaos::ChaosReport& report : reports) {
      print_report(report, false);
      all_passed = all_passed && report.passed();
    }
    return all_passed ? 0 : 1;
  }

  options.keep_trace = true;
  const chaos::ChaosReport report =
      chaos::run_scenario(*scenario, seed, options);
  print_report(report, args.get_bool("trace", false));
  if (report.passed()) return 0;

  if (const std::string out = args.get_string("shrink", ""); !out.empty()) {
    const chaos::ShrinkResult shrunk =
        chaos::shrink_scenario(*scenario, seed, options);
    std::ofstream file(out);
    file << chaos::to_text(shrunk.minimized);
    file.close();
    std::printf("shrunk to %zu phases in %zu runs; repro:\n  %s\n",
                shrunk.minimized.phases.size(), shrunk.runs,
                chaos::repro_command(out, seed, options.mutation).c_str());
  }
  return 1;
}
