// model_cli — the paper's evaluation program as a command-line tool.
//
// "For the evaluation of the recursive analytical functions a C-program
// has been developed" (§5). This is that program, usable:
//
//   ./build/examples/model_cli --R 10000 --online 1000 --sigma 0.95
//       --fr 0.01 --pf geometric:0.9 --no-list --trajectory
//   (one line; wrapped here for width)
//
// PF schedules: const:<p>, linear:<slope>, geometric:<base>,
// offset:<scale>,<base>,<offset>, haas:<p>,<k>.
#include <iostream>
#include <string>

#include "analysis/push_model.hpp"
#include "analysis/tuning.hpp"
#include "common/args.hpp"
#include "common/table.hpp"

using namespace updp2p;

namespace {

analysis::PfSchedule parse_pf(const std::string& spec) {
  const auto colon = spec.find(':');
  const std::string kind = spec.substr(0, colon);
  const std::string params =
      colon == std::string::npos ? "" : spec.substr(colon + 1);
  auto split = [&params]() {
    std::vector<double> values;
    std::size_t start = 0;
    while (start <= params.size()) {
      const auto comma = params.find(',', start);
      const std::string token =
          params.substr(start, comma == std::string::npos ? std::string::npos
                                                          : comma - start);
      if (!token.empty()) values.push_back(std::stod(token));
      if (comma == std::string::npos) break;
      start = comma + 1;
    }
    return values;
  };
  const auto values = split();
  auto value_or = [&values](std::size_t i, double fallback) {
    return i < values.size() ? values[i] : fallback;
  };
  if (kind == "linear") return analysis::pf_linear_decay(value_or(0, 0.1));
  if (kind == "geometric") return analysis::pf_geometric(value_or(0, 0.9));
  if (kind == "offset") {
    return analysis::pf_offset_geometric(value_or(0, 0.8), value_or(1, 0.7),
                                         value_or(2, 0.2));
  }
  if (kind == "haas") {
    return analysis::pf_haas(value_or(0, 0.8),
                             static_cast<common::Round>(value_or(1, 2)));
  }
  return analysis::pf_constant(value_or(0, 1.0));
}

}  // namespace

int main(int argc, char** argv) {
  const common::Args args(argc, argv);
  if (args.has("help")) {
    std::cout
        << "usage: model_cli [--R N] [--online N] [--sigma S] [--fr F]\n"
        << "                 [--pf SPEC] [--no-list] [--list-cap L]\n"
        << "                 [--update-bytes U] [--entry-bytes A]\n"
        << "                 [--max-rounds N] [--trajectory]\n"
        << "PF SPEC: const:<p> | linear:<slope> | geometric:<base> |\n"
        << "         offset:<scale>,<base>,<offset> | haas:<p>,<k>\n";
    return 0;
  }

  if (args.has("recommend")) {
    // Inverse problem: find the cheapest (f_r, PF decay) configuration
    // meeting a coverage/latency target in this environment.
    analysis::TuningRequest request;
    request.total_replicas = static_cast<double>(args.get_int("R", 10'000));
    request.online_fraction = args.get_double("availability", 0.2);
    request.sigma = args.get_double("sigma", 0.95);
    request.target_aware = args.get_double("target", 0.99);
    request.max_rounds99 =
        static_cast<common::Round>(args.get_int("max-rounds99", 30));
    const auto result = analysis::recommend_parameters(request);
    if (!result.feasible) {
      std::cout << "no feasible configuration in range for this "
                   "environment/target\n";
      return 2;
    }
    std::cout << "recommended f_r:       " << result.fanout_fraction << " ("
              << common::format_double(
                     result.fanout_fraction * request.total_replicas, 0)
              << " peers per push)\n"
              << "recommended PF(t):     "
              << (result.pf_decay_base >= 1.0
                      ? std::string("1 (flooding)")
                      : common::format_double(result.pf_decay_base, 2) + "^t")
              << "\npredicted msgs/peer:   "
              << common::format_double(result.messages_per_online, 2)
              << "\npredicted F_aware:     "
              << common::format_double(result.predicted_aware, 4)
              << "\npredicted rounds(99%): " << result.predicted_rounds99
              << "\n";
    return 0;
  }

  analysis::PushModelParams params;
  params.total_replicas = static_cast<double>(args.get_int("R", 10'000));
  params.initial_online = static_cast<double>(args.get_int("online", 1'000));
  params.sigma = args.get_double("sigma", 0.95);
  params.fanout_fraction = args.get_double("fr", 0.01);
  params.pf = parse_pf(args.get_string("pf", "const:1"));
  params.use_partial_list = !args.get_bool("no-list", false);
  params.list_cap = args.get_double("list-cap", 1.0);
  params.update_size_bytes = args.get_double("update-bytes", 100.0);
  params.replica_entry_bytes = args.get_double("entry-bytes", 10.0);
  params.max_rounds =
      static_cast<common::Round>(args.get_int("max-rounds", 500));

  const auto trajectory = analysis::evaluate_push(params);

  std::cout << "R=" << params.total_replicas
            << " R_on(0)=" << params.initial_online
            << " sigma=" << params.sigma << " f_r=" << params.fanout_fraction
            << " PF=" << params.pf.label
            << " partial-list=" << (params.use_partial_list ? "on" : "off")
            << "\n\n"
            << "total messages:            " << trajectory.total_messages()
            << "\nmessages per online peer:  "
            << common::format_double(trajectory.messages_per_initial_online(),
                                     3)
            << "\nfinal F_aware:             "
            << common::format_double(trajectory.final_aware(), 4)
            << "\nrounds (99% of final):     "
            << trajectory.rounds_to_fraction(0.99)
            << "\nrounds (model tail):       " << trajectory.rounds_used()
            << "\nrumor died (<99% aware):   "
            << (trajectory.died() ? "yes" : "no")
            << "\ntotal bytes (wire model):  "
            << common::format_double(trajectory.total_bytes(), 0) << "\n";

  if (args.get_bool("trajectory", false)) {
    common::TextTable table("per-round trajectory");
    table.header({"t", "online", "forwarders", "f_new", "F_aware", "M(t)",
                  "cum M", "l(t)", "L_M(t) B"});
    for (const auto& r : trajectory.rounds) {
      table.row()
          .cell(static_cast<std::size_t>(r.t))
          .cell(r.online, 0)
          .cell(r.forwarders, 1)
          .cell(r.new_aware, 4)
          .cell(r.aware, 4)
          .cell(r.messages, 1)
          .cell(r.cum_messages, 1)
          .cell(r.list_length, 4)
          .cell(r.message_bytes, 0);
    }
    table.print(std::cout);
  }
  return 0;
}
