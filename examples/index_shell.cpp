// index_shell — an interactive shell over the assembled system
// (ReplicatedIndex: P-Grid routing + per-partition hybrid push/pull).
//
//   $ ./build/examples/index_shell
//   updp2p> put users/alice profile-v1
//   updp2p> step 10
//   updp2p> get users/alice
//   updp2p> churn 0.3          # only 30% of peers stay online
//   updp2p> del users/alice
//
// Reads commands from stdin; with no input it prints a short scripted demo
// so automated runs still exercise the system end to end.
#include <iostream>
#include <sstream>
#include <string>

#include "analysis/forward_probability.hpp"
#include "common/rng.hpp"
#include "pgrid/replicated_index.hpp"

using namespace updp2p;

namespace {

void print_help() {
  std::cout <<
      "commands:\n"
      "  put <key> <value...>   write (routed to the responsible partition)\n"
      "  get <key> [latest|majority|hybrid]\n"
      "  del <key>              delete via tombstone\n"
      "  step [n]               run n gossip rounds (default 5)\n"
      "  churn <fraction>       re-roll availability: each peer online w.p. f\n"
      "  online <id> | offline <id>\n"
      "  group <key>            show the replica group of a key\n"
      "  stats                  traffic counters\n"
      "  help | quit\n";
}

gossip::QueryRule parse_rule(const std::string& word) {
  if (word == "majority") return gossip::QueryRule::kMajority;
  if (word == "latest") return gossip::QueryRule::kLatestVersion;
  return gossip::QueryRule::kHybrid;
}

common::PeerId random_online_peer(pgrid::ReplicatedIndex& index,
                                  common::Rng& rng) {
  for (int tries = 0; tries < 1'000; ++tries) {
    const common::PeerId peer(
        static_cast<std::uint32_t>(rng.uniform_below(index.population())));
    if (index.is_online(peer)) return peer;
  }
  return common::PeerId(0);
}

bool execute(pgrid::ReplicatedIndex& index, common::Rng& rng,
             const std::string& line) {
  std::istringstream in(line);
  std::string command;
  if (!(in >> command) || command.empty() || command[0] == '#') return true;

  if (command == "quit" || command == "exit") return false;
  if (command == "help") {
    print_help();
    return true;
  }
  if (command == "put") {
    std::string key;
    in >> key;
    std::string value;
    std::getline(in, value);
    if (!value.empty() && value.front() == ' ') value.erase(0, 1);
    const auto origin = random_online_peer(index, rng);
    const auto outcome = index.put(origin, key, value);
    std::cout << (outcome.ok ? "ok" : "ROUTING FAILED") << " (origin peer "
              << origin.value() << ", " << outcome.hops << " hops)\n";
    return true;
  }
  if (command == "get") {
    std::string key, rule_word;
    in >> key >> rule_word;
    const auto origin = random_online_peer(index, rng);
    const auto value = index.get(origin, key, parse_rule(rule_word), 3);
    if (value.has_value()) {
      std::cout << key << " = \"" << value->payload << "\"  [history "
                << value->history.to_string() << "]\n";
    } else {
      std::cout << key << " not found (unknown, deleted, or unroutable)\n";
    }
    return true;
  }
  if (command == "del") {
    std::string key;
    in >> key;
    const auto outcome = index.remove(random_online_peer(index, rng), key);
    std::cout << (outcome.ok ? "tombstone pushed" : "ROUTING FAILED") << "\n";
    return true;
  }
  if (command == "step") {
    unsigned rounds = 5;
    in >> rounds;
    index.step_rounds(rounds);
    std::cout << "round " << index.current_round() << ", "
              << index.online_count() << "/" << index.population()
              << " online\n";
    return true;
  }
  if (command == "churn") {
    double fraction = 0.5;
    in >> fraction;
    for (std::uint32_t i = 0; i < index.population(); ++i) {
      index.set_online(common::PeerId(i), rng.bernoulli(fraction));
    }
    std::cout << index.online_count() << "/" << index.population()
              << " peers online\n";
    return true;
  }
  if (command == "online" || command == "offline") {
    std::uint32_t id = 0;
    in >> id;
    if (id < index.population()) {
      index.set_online(common::PeerId(id), command == "online");
      std::cout << "peer " << id << " is now " << command << "\n";
    } else {
      std::cout << "no such peer\n";
    }
    return true;
  }
  if (command == "group") {
    std::string key;
    in >> key;
    const auto path = pgrid::BitPath::from_key(key, 64);
    const auto& group = index.grid().replica_group(path);
    std::cout << "partition " << index.grid().partition_of(path).to_string()
              << ": " << group.size() << " replicas:";
    for (const auto peer : group) {
      std::cout << ' ' << peer.value()
                << (index.is_online(peer) ? "" : "(off)");
    }
    std::cout << "\n";
    return true;
  }
  if (command == "stats") {
    const auto& stats = index.bus_stats();
    std::cout << "sent " << stats.messages_sent << " (delivered "
              << stats.messages_delivered << ", to-offline "
              << stats.messages_to_offline << "), " << stats.bytes_sent
              << " bytes\n";
    return true;
  }
  std::cout << "unknown command; try 'help'\n";
  return true;
}

}  // namespace

int main() {
  pgrid::ReplicatedIndexConfig config;
  config.grid.peers = 256;
  config.grid.depth = 3;  // 8 partitions of 32 replicas
  config.grid.refs_per_level = 4;
  config.gossip.fanout_fraction = 0.2;
  config.gossip.forward_probability = analysis::pf_geometric(0.9);
  config.gossip.pull.no_update_timeout = 6;
  pgrid::ReplicatedIndex index(config);
  common::Rng rng(2026);

  std::cout << "updp2p index shell — " << index.population() << " peers, "
            << (1 << config.grid.depth) << " partitions (type 'help')\n";

  std::string line;
  bool interactive = false;
  while (std::cout << "updp2p> " << std::flush, std::getline(std::cin, line)) {
    interactive = true;
    if (!execute(index, rng, line)) break;
  }

  if (!interactive) {
    // No stdin: run a short scripted demo.
    std::cout << "(no input — running scripted demo)\n";
    for (const char* demo : {
             "put users/alice profile-v1", "step 10", "get users/alice",
             "churn 0.3", "put users/alice profile-v2", "step 10",
             "churn 1.0", "step 15", "get users/alice", "del users/alice",
             "step 10", "get users/alice", "stats"}) {
      std::cout << "updp2p> " << demo << "\n";
      (void)execute(index, rng, demo);
    }
  }
  return 0;
}
